"""Fault-sweep execution across defense profiles and pool backends.

Per profile (none/casu/eilid), a :class:`FaultCampaign`:

1. builds the honest device and snapshots it (optionally after a
   warm-up run, so faults land mid-workload);
2. replays the snapshot into a *fresh* device and runs it to DONE --
   the golden run, which both sizes the per-fault cycle budget and
   proves the restore path before any fault rides it;
3. shards the plan's faults across a thread or process pool; each
   worker restores the snapshot per fault, injects, runs, grades
   (:mod:`repro.faults.inject`);
4. tallies detection/escape/crash/silent-corruption into a
   :class:`FaultReport` whose :meth:`~FaultReport.render` is the
   paper-style per-profile table.

All profiles sweep the **same original-variant image**, so the eilid
monitor set being a strict superset of casu's makes the detection
ordering eilid >= casu >= none deterministic, per fault: execution is
bit-identical until the first violation, and any sub-monitor casu
trips is also armed under eilid.

The shard context is pure JSON (firmware spec, snapshot wire dict,
golden outputs, budget) and stamps the shared codec version, so a
mismatched parent/worker build fails loudly -- same contract as the
fleet's record codec.
"""

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, List, Optional, Sequence

from repro.eval.report import render_table
from repro.faults.inject import run_faulted
from repro.faults.plan import FaultPlan
from repro.snapshot import WIRE_VERSION, check_wire_version

FAULT_PROFILES = ("none", "casu", "eilid")
FAULT_BACKENDS = ("thread", "process")


@dataclass
class ProfileTally:
    """Outcome counts for one defense profile."""

    profile: str
    total: int = 0
    detected: int = 0
    escape: int = 0
    crash: int = 0
    silent: int = 0
    golden_cycles: int = 0

    def count(self, outcome: str) -> None:
        self.total += 1
        if outcome == "detected":
            self.detected += 1
        elif outcome == "escape":
            self.escape += 1
        elif outcome == "crash":
            self.crash += 1
        elif outcome == "silent-corruption":
            self.silent += 1
        else:
            raise ValueError(f"unknown fault outcome {outcome!r}")

    @property
    def detection_rate(self) -> float:
        return self.detected / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {"profile": self.profile, "total": self.total,
                "detected": self.detected, "escape": self.escape,
                "crash": self.crash, "silent_corruption": self.silent,
                "detection_rate": round(self.detection_rate, 4),
                "golden_cycles": self.golden_cycles}


@dataclass
class FaultReport:
    """One sweep's results across every requested profile."""

    name: str
    seed: int
    backend: str
    faults: int
    tallies: List[ProfileTally] = field(default_factory=list)
    outcomes: Dict[str, List[dict]] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def tally(self, profile: str) -> ProfileTally:
        for tally in self.tallies:
            if tally.profile == profile:
                return tally
        raise KeyError(profile)

    @property
    def faults_per_sec(self) -> float:
        total = sum(tally.total for tally in self.tallies)
        return total / self.elapsed_s if self.elapsed_s else 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed, "backend": self.backend,
                "faults": self.faults,
                "profiles": [tally.to_dict() for tally in self.tallies],
                "elapsed_s": round(self.elapsed_s, 6),
                "faults_per_sec": round(self.faults_per_sec, 1)}

    def render(self) -> str:
        """The paper-style table: one row per defense profile."""
        rows = []
        for tally in self.tallies:
            rows.append([
                tally.profile, str(tally.total), str(tally.detected),
                str(tally.escape), str(tally.crash), str(tally.silent),
                f"{100.0 * tally.detection_rate:.1f}%",
            ])
        return render_table(
            ["profile", "faults", "detected", "escape", "crash",
             "silent", "detection"],
            rows,
            title=f"Fault sweep: {self.name} "
                  f"(seed {self.seed}, {self.backend} backend)")


class FaultCampaign:
    """Run one expanded :class:`FaultPlan` across defense profiles."""

    def __init__(self, firmware, plan: FaultPlan,
                 profiles: Sequence[str] = FAULT_PROFILES,
                 backend: str = "thread", workers: Optional[int] = None,
                 max_cycles: int = 2_000_000, warmup_steps: int = 0,
                 events=None, policy=None):
        unknown = sorted(set(profiles) - set(FAULT_PROFILES))
        if unknown:
            raise ValueError(f"unknown profile(s) {', '.join(unknown)}; "
                             f"one of {', '.join(FAULT_PROFILES)}")
        if backend not in FAULT_BACKENDS:
            raise ValueError(f"backend must be one of {FAULT_BACKENDS}")
        self.firmware = firmware
        self.plan = plan
        self.profiles = tuple(profiles)
        self.backend = backend
        self.workers = workers or 4
        self.max_cycles = max_cycles
        self.warmup_steps = warmup_steps
        self.events = events
        # Optional CfiPolicy: escapes additionally replay their branch
        # trace against it (verifier-side grading; see run_faulted).
        self.policy = policy

    # ---- golden path -----------------------------------------------------

    def _golden(self, profile: str):
        """Snapshot the honest device and prove the restore path.

        Returns ``(snapshot_doc, golden_doc, budget)`` where the golden
        run executed on a *restored* device -- if restore were lossy,
        the sweep's reference would already be wrong, so this is the
        first line of defense, not just a convenience.
        """
        from repro.api.firmware import build_firmware
        from repro.device import build_device

        program = build_firmware(self.firmware).program
        honest = build_device(program, security=profile)
        if self.warmup_steps:
            honest.run_steps(self.warmup_steps, max_cycles=self.max_cycles)
        snapshot_doc = honest.snapshot().to_dict()

        golden = build_device(program, security=profile)
        golden.restore(snapshot_doc)
        result = golden.run(max_cycles=self.max_cycles)
        if result.violations or not golden.harness.done:
            raise RuntimeError(
                f"honest {profile} run did not complete cleanly "
                f"(done={golden.harness.done}, "
                f"violations={result.violations}); fault grades would "
                f"be meaningless")
        golden_doc = {
            "done_value": golden.harness.done_value,
            "outputs": [[port, value]
                        for port, value in golden.output_events()],
        }
        # Twice the honest runtime plus slack: enough for any detour
        # that still terminates, cheap enough to bound wild execution.
        budget = 2 * result.cycles + 20_000
        return snapshot_doc, golden_doc, budget

    # ---- execution -------------------------------------------------------

    def run(self) -> FaultReport:
        report = FaultReport(name=self.plan.name, seed=self.plan.seed,
                             backend=self.backend, faults=len(self.plan))
        campaign_id = None
        if self.events is not None:
            campaign_id = self.events.start_campaign(
                sweep=self.plan.name, faults=len(self.plan),
                profiles=list(self.profiles), backend=self.backend,
                seed=self.plan.seed)
        started = time.perf_counter()
        pool_cls = (ProcessPoolExecutor if self.backend == "process"
                    else ThreadPoolExecutor)
        with pool_cls(max_workers=self.workers) as pool:
            for profile in self.profiles:
                snapshot_doc, golden_doc, budget = self._golden(profile)
                context = {
                    "codec": WIRE_VERSION,
                    "firmware": self.firmware.to_dict(),
                    "security": profile,
                    "snapshot": snapshot_doc,
                    "golden": golden_doc,
                    "budget": budget,
                    "policy": (None if self.policy is None
                               else self.policy.to_dict()),
                }
                faults = [dict(fault) for fault in self.plan.faults]
                if self.events is not None:
                    for fault in faults:
                        self.events.emit(
                            "fault-inject", campaign=campaign_id,
                            profile=profile, fault=fault["id"],
                            fault_kind=fault["kind"], pc=fault["pc"])
                # ~2 batches per worker: balanced without paying
                # per-fault submission overhead.
                chunk = max(1, -(-len(faults) // (2 * self.workers)))
                batches = [faults[i:i + chunk]
                           for i in range(0, len(faults), chunk)]
                tally = ProfileTally(profile=profile,
                                     golden_cycles=(budget - 20_000) // 2)
                outcomes: List[dict] = []
                for shard in pool.map(_run_fault_shard, repeat(context),
                                      batches):
                    check_wire_version(shard, "fault shard result")
                    outcomes.extend(shard["outcomes"])
                outcomes.sort(key=lambda doc: doc["id"])
                for doc in outcomes:
                    tally.count(doc["outcome"])
                    if self.events is not None:
                        self.events.emit(
                            "fault-outcome", campaign=campaign_id,
                            profile=profile, fault=doc["id"],
                            fault_kind=doc["kind"], pc=doc["pc"],
                            outcome=doc["outcome"], reason=doc["reason"])
                report.tallies.append(tally)
                report.outcomes[profile] = outcomes
        report.elapsed_s = time.perf_counter() - started
        if self.events is not None:
            self.events.emit(
                "campaign-end", campaign=campaign_id,
                status="complete", faults=len(self.plan),
                profiles={tally.profile: tally.to_dict()
                          for tally in report.tallies},
                elapsed_s=round(report.elapsed_s, 6),
                faults_per_sec=round(report.faults_per_sec, 1))
            self.events.flush()
        return report


# ---- pool worker -----------------------------------------------------------


def _run_fault_shard(context: dict, fault_docs: List[dict]) -> dict:
    """Grade one batch of faults in a worker (process or thread).

    Pure function of its JSON arguments: builds the firmware once per
    process (``build_firmware`` is lru-cached), restores the shipped
    snapshot per fault, injects, runs, grades.  Order inside the batch
    is irrelevant -- the parent re-sorts outcomes by fault id -- which
    is what makes thread and process tallies identical by construction.
    """
    from repro.api.firmware import build_firmware
    from repro.api.spec import FirmwareSpec
    from repro.device import build_device

    check_wire_version(context, "fault shard context")
    spec = FirmwareSpec.from_dict(context["firmware"])
    program = build_firmware(spec).program
    security = context["security"]
    snapshot_doc = context["snapshot"]
    budget = context["budget"]
    golden_outputs = [tuple(event) for event in context["golden"]["outputs"]]
    golden_done_value = context["golden"]["done_value"]
    policy = None
    if context.get("policy") is not None:
        from repro.cfg.policy import CfiPolicy

        policy = CfiPolicy.from_dict(context["policy"])
    outcomes = []
    for fault in fault_docs:
        device = build_device(program, security=security)
        device.restore(snapshot_doc)
        outcomes.append(run_faulted(device, fault, budget,
                                    golden_outputs, golden_done_value,
                                    policy=policy))
    return {"codec": WIRE_VERSION, "outcomes": outcomes}
