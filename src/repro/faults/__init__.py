"""CFG-driven fault-injection campaigns.

EILID's evaluation argues detection coverage from four hand-written
attacks; this package makes the claim systematic, LLFI-style: enumerate
fault sites from the statically recovered CFG (:mod:`repro.cfg.recover`),
expand a deterministic seeded sweep plan, then run every fault against
each defense profile (none/casu/eilid) and grade the outcome --
detected, escaped (masked), crash, or silent corruption.

The sweep rides the portable device-snapshot codec
(:mod:`repro.snapshot`): the honest device is snapshotted once per
profile, and each fault restores that snapshot into a fresh device --
in a process-pool worker when ``backend="process"`` -- mutates it, and
runs it out.  Same seed => identical tallies on both backends.
"""

from repro.faults.campaign import (
    FAULT_PROFILES,
    FaultCampaign,
    FaultReport,
    ProfileTally,
)
from repro.faults.inject import OUTCOMES, run_faulted
from repro.faults.plan import FaultPlan, expand_plan
from repro.faults.sites import FAULT_KINDS, FaultSite, enumerate_sites

__all__ = [
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "FaultCampaign",
    "FaultPlan",
    "FaultReport",
    "FaultSite",
    "OUTCOMES",
    "ProfileTally",
    "enumerate_sites",
    "expand_plan",
    "run_faulted",
]
