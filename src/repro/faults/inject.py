"""Fault injection and outcome grading on a restored device.

Every fault runs the same protocol: restore the honest snapshot into a
fresh device, plant (or arm) the fault, run the device out under a
cycle budget, and grade the result against the golden (fault-free)
run:

* ``detected``          -- the hardware monitor recorded a violation;
* ``escape``            -- the workload completed with golden-identical
                           outputs (the fault was masked, or its
                           trigger never fired);
* ``silent-corruption`` -- the workload completed but its observable
                           I/O or DONE value diverged from golden;
* ``crash``             -- neither DONE nor a violation inside the
                           budget (wild execution, hang, illegal-insn
                           spin on an unmonitored device).

``imem-flip`` plants immediately through the bus back door
(:meth:`repro.memory.bus.Bus.load_bytes`-style ``poke_word``, which
invalidates covering decode-cache entries); the PC-triggered kinds arm
by running with ``break_at={pc}`` and mutating state when execution
reaches the trigger.
"""

from typing import Dict, List, Tuple

OUTCOMES = ("detected", "escape", "crash", "silent-corruption")


def _plant_imem_flip(device, fault: Dict) -> None:
    bit = fault["bit"]
    addr = (fault["pc"] + 2 * (bit // 16)) & 0xFFFE
    word = device.bus.peek_word(addr)
    device.bus.poke_word(addr, word ^ (1 << (bit % 16)))


def _trigger(device, fault: Dict) -> None:
    """Mutate state at the fault's trigger PC."""
    kind = fault["kind"]
    if kind == "insn-skip":
        device.cpu.pc = fault["next_pc"]
    elif kind == "reg-corrupt":
        reg = fault["reg"]
        device.cpu.set_reg(reg, device.cpu.get_reg(reg) ^ fault["mask"])
    elif kind == "periph-corrupt":
        mask = fault["mask"]
        name = fault["periph"]
        peripheral = device.peripherals[name]
        if name == "adc":
            peripheral.data ^= mask & 0x3FF
        elif name == "gpio":
            peripheral.out ^= mask & 0xFFFF
        elif name == "timer":
            peripheral.count ^= mask & 0xFFFF
        elif name == "uart":
            peripheral._rx_fifo.append(mask & 0xFF)
        else:
            raise ValueError(f"cannot corrupt peripheral {name!r}")
    else:
        raise ValueError(f"unknown fault kind {fault['kind']!r}")


def run_faulted(device, fault: Dict, budget: int,
                golden_outputs: List[Tuple[str, int]],
                golden_done_value, policy=None) -> Dict:
    """Inject *fault* into *device* (already restored) and grade it.

    Returns the outcome wire dict: id/kind/pc plus ``outcome``, the
    first violation ``reason`` (when detected) and the cycles consumed.

    With *policy* (a :class:`~repro.cfg.policy.CfiPolicy`), faults that
    would grade ``escape`` or ``silent-corruption`` additionally replay
    the device's branch trace against the policy -- the verifier-side
    attestation check.  A rejected replay upgrades the outcome to
    ``detected`` with reason ``replay:<why>``, which is what lets a
    re-run sweep prove a proposed policy tightening converts escapes
    into detections.
    """
    start_cycle = device.cycle
    violations = []
    if fault["kind"] == "imem-flip":
        _plant_imem_flip(device, fault)
    else:
        # Arm: run until the trigger PC (or the workload ends first,
        # in which case the fault never fires and grades as masked).
        result = device.run(max_cycles=budget, break_at={fault["pc"]})
        violations.extend(result.violations)
        if (not violations and not device.harness.done
                and device.cpu.pc == fault["pc"]):
            _trigger(device, fault)
    remaining = budget - (device.cycle - start_cycle)
    if remaining > 0 and not violations and not device.harness.done:
        result = device.run(max_cycles=remaining)
        violations.extend(result.violations)

    if violations:
        outcome = "detected"
        reason = violations[0].reason.value
    else:
        reason = None
        if not device.harness.done:
            outcome = "crash"
        elif (device.harness.done_value == golden_done_value
              and device.output_events() == golden_outputs):
            outcome = "escape"
        else:
            outcome = "silent-corruption"
    if policy is not None and outcome in ("escape", "silent-corruption"):
        from repro.cfg.replay import replay_trace

        replay = replay_trace(policy, device.trace_snapshot())
        if not replay.ok:
            outcome = "detected"
            reason = f"replay:{replay.reason}"
    return {"id": fault["id"], "kind": fault["kind"], "pc": fault["pc"],
            "outcome": outcome, "reason": reason,
            "cycles": device.cycle - start_cycle}
