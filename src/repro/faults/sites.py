"""Fault-site enumeration from the recovered CFG.

A *site* is a static location where a fault can be planted; the
concrete parameters (which bit, which register, which peripheral) are
chosen later by the seeded plan expander (:mod:`repro.faults.plan`).

Four kinds, mirroring the LLFI instrumentation points scaled down to
the MCU model:

* ``imem-flip``      -- one bit of an instruction's IMEM encoding,
                        per decoded instruction;
* ``insn-skip``      -- suppress one instruction (PC jumps to its
                        fall-through), per decoded instruction;
* ``reg-corrupt``    -- XOR a general-purpose register when execution
                        reaches a basic-block entry;
* ``periph-corrupt`` -- corrupt a peripheral data latch (ADC sample,
                        GPIO out, timer count, UART RX) at a
                        basic-block entry.

Enumeration walks :class:`repro.cfg.recover.RecoveredCfg` function by
function, so every site carries its function/block context for the
report and for per-region filtering.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

FAULT_KINDS = ("imem-flip", "insn-skip", "reg-corrupt", "periph-corrupt")

# Peripherals a periph-corrupt fault may target (see inject.py for the
# per-peripheral mutation each one means).
CORRUPTIBLE_PERIPHERALS = ("adc", "gpio", "timer", "uart")


@dataclass(frozen=True)
class FaultSite:
    """One static fault location."""

    kind: str  # one of FAULT_KINDS
    pc: int  # the instruction / block-entry address the fault anchors to
    function: str
    block: int  # containing basic block's start address
    size: int = 2  # instruction size in bytes (imem-flip / insn-skip)
    next_pc: Optional[int] = None  # fall-through address (insn-skip)

    def __str__(self):
        return f"{self.kind}@0x{self.pc:04x} ({self.function})"


def enumerate_sites(cfg, kinds: Sequence[str] = FAULT_KINDS) -> List[FaultSite]:
    """All fault sites of the requested *kinds* in a recovered CFG.

    Per-instruction kinds (``imem-flip``, ``insn-skip``) yield one site
    per decoded instruction; per-block kinds (``reg-corrupt``,
    ``periph-corrupt``) yield one per basic-block entry.  Order is
    deterministic: functions by entry address, blocks by start, insns
    by address -- the seeded plan expander depends on it.
    """
    unknown = sorted(set(kinds) - set(FAULT_KINDS))
    if unknown:
        raise ValueError(f"unknown fault kind(s) {', '.join(unknown)}; "
                         f"one of {', '.join(FAULT_KINDS)}")
    wanted = frozenset(kinds)
    sites: List[FaultSite] = []
    functions = sorted(cfg.functions.values(), key=lambda fn: fn.entry)
    for fn in functions:
        for block in sorted(fn.blocks.values(), key=lambda b: b.start):
            if "reg-corrupt" in wanted:
                sites.append(FaultSite("reg-corrupt", block.start,
                                       fn.name, block.start))
            if "periph-corrupt" in wanted:
                sites.append(FaultSite("periph-corrupt", block.start,
                                       fn.name, block.start))
            for insn in block.insns:
                if "imem-flip" in wanted:
                    sites.append(FaultSite("imem-flip", insn.addr, fn.name,
                                           block.start, size=insn.size))
                if "insn-skip" in wanted:
                    sites.append(FaultSite("insn-skip", insn.addr, fn.name,
                                           block.start, size=insn.size,
                                           next_pc=insn.next_addr))
    return sites
