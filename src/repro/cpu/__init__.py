"""openMSP430-style CPU core: fetch/decode/execute with cycle accounting.

The core executes decoded :class:`repro.isa.Instruction` objects against
a :class:`repro.memory.Bus`, emitting one :class:`StepRecord` per step
(instruction, interrupt entry, or idle).  Hardware monitors consume the
step records; they never reach into the core's internals, mirroring the
signal-tap integration of CASU.
"""

from repro.cpu.core import Cpu, StepKind, StepRecord
from repro.cpu.interrupts import InterruptController

__all__ = ["Cpu", "StepKind", "StepRecord", "InterruptController"]
