"""Interrupt controller: pending lines, priority, vector lookup.

MSP430 interrupt priority grows with the vector address; the reset
vector (index 15) is handled by the device, not by this controller.
Lines are edge-style: a request stays pending until the CPU accepts it,
at which point it auto-clears (peripherals re-raise as needed).
"""

from repro.errors import MemoryAccessError
from repro.memory.map import NUM_VECTORS

RESET_VECTOR_INDEX = 15


class InterruptController:
    def __init__(self):
        self._pending = [False] * NUM_VECTORS

    def request(self, index):
        if not 0 <= index < NUM_VECTORS:
            raise MemoryAccessError(f"interrupt index {index} out of range")
        if index == RESET_VECTOR_INDEX:
            raise MemoryAccessError("reset is requested through the device, not the IC")
        self._pending[index] = True

    def clear(self, index):
        self._pending[index] = False

    def clear_all(self):
        self._pending = [False] * NUM_VECTORS

    def pending_index(self):
        """Highest-priority pending vector index, or ``None``."""
        for index in range(NUM_VECTORS - 2, -1, -1):
            if self._pending[index]:
                return index
        return None

    def accept(self):
        """Pop the highest-priority pending interrupt (CPU side)."""
        index = self.pending_index()
        if index is not None:
            self._pending[index] = False
        return index

    @property
    def any_pending(self):
        return self.pending_index() is not None

    # ---- snapshot/restore (see repro.snapshot) ---------------------------

    def snapshot_state(self):
        return {"pending": list(self._pending)}

    def restore_state(self, state):
        pending = state["pending"]
        if len(pending) != NUM_VECTORS:
            raise MemoryAccessError(
                f"interrupt snapshot has {len(pending)} lines, "
                f"expected {NUM_VECTORS}")
        self._pending = [bool(line) for line in pending]
