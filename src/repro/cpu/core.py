"""The MSP430 CPU core.

One :meth:`Cpu.step` executes a single architectural event -- interrupt
acceptance or one instruction -- updates the register file and bus, and
returns a :class:`StepRecord` carrying everything the hardware monitors
observe: the issuing PC, the resulting PC, the bus accesses, and whether
the step was an interrupt entry.

Instruction semantics and cycle counts follow SLAU049 (MSP430x1xx
Family User's Guide).  Deviations, all harmless to the EILID argument,
are documented inline.

Decoded-instruction cache
-------------------------

The hot path keeps a cache ``{pc: (insn, next_pc, cycles, fetch
accesses, executor)}`` so straight-line re-execution never re-decodes.
The invalidation contract, shared with :class:`repro.memory.bus.Bus`:

* filling an entry registers every word address the instruction's
  encoding occupies with the bus (:meth:`Bus.note_code_cached`);
* **any** mutation of memory through the bus -- CPU-issued writes,
  back-door ``poke_word``/``load_bytes``, violation-rollback restores --
  kills every entry whose registered words overlap the written word, so
  self-modifying and attacker-injected code always re-decodes;
* a cache hit replays the entry's recorded FETCH accesses into the bus
  trace, so the monitor-visible access stream is bit-identical to an
  uncached run (the replayed records are value-equal to the ones a real
  fetch sequence would append, and the invalidation rule guarantees the
  underlying words have not changed).

Interrupt acceptance and ILLEGAL/fault steps are never cached.  Passing
``decode_cache=False`` (or flipping :data:`DECODE_CACHE_DEFAULT`)
disables the cache; the differential tests in
``tests/test_decode_cache.py`` assert both paths produce identical
StepRecords, cycle totals and monitor verdicts.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DecodingError, MemoryAccessError
from repro.isa import decode, instruction_cycles, INTERRUPT_CYCLES
from repro.isa.operands import AddrMode
from repro.isa.registers import (
    FLAG_C,
    FLAG_GIE,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    NUM_REGISTERS,
    PC,
    SP,
    SR,
)
from repro.memory.bus import Access, AccessKind, Bus
from repro.memory.map import RESET_VECTOR

# Process-wide default for new CPUs; tests flip this to run whole
# subsystems (attacks, apps) through the uncached path differentially.
DECODE_CACHE_DEFAULT = True


class StepKind(enum.Enum):
    INSTRUCTION = "instruction"
    INTERRUPT = "interrupt"
    ILLEGAL = "illegal"


@dataclass
class StepRecord:
    """Everything one step exposes to the monitors and to traces."""

    kind: StepKind
    pc: int  # PC before the step (issuing PC)
    next_pc: int  # PC after the step
    cycles: int
    accesses: list = field(default_factory=list)
    insn: Optional[object] = None  # Instruction for INSTRUCTION steps
    vector: Optional[int] = None  # vector index for INTERRUPT steps
    illegal_word: Optional[int] = None

    def __str__(self):
        if self.kind is StepKind.INTERRUPT:
            body = f"IRQ vector {self.vector}"
        elif self.kind is StepKind.ILLEGAL:
            body = f"ILLEGAL 0x{self.illegal_word:04x}"
        else:
            body = self.insn.render()
        return f"0x{self.pc:04x}: {body} ({self.cycles} cyc)"


class Cpu:
    """Register file + execution engine."""

    def __init__(self, bus: Bus, interrupt_controller=None, decode_cache=None):
        self.bus = bus
        self.regs = [0] * NUM_REGISTERS
        self.ic = interrupt_controller
        self.total_cycles = 0
        self.instruction_count = 0
        # Hardware gate: when this predicate returns True for the current
        # PC, pending interrupts are *deferred* (EILID keeps IRQs out of
        # the secure ROM to preserve atomicity).  Installed by the device.
        self.irq_deferred_at = lambda pc: False
        # Branch-trace tap: an object with .observe(StepRecord), called
        # for every architectural event (the EILID trace-attestation
        # recorder).  Installed by the device; None keeps the hot path
        # free of the extra call.
        self.trace_sink = None
        # Extension-word fetch cursor; the bound method is hoisted so the
        # step loop never allocates a closure.
        self._fetch_addr = 0
        self._fetch_ext_cb = self._fetch_ext
        # Opcode -> bound executor, resolved once.
        self._executors = {
            "mov": self._ex_mov,
            "add": self._ex_add,
            "addc": self._ex_addc,
            "sub": self._ex_sub,
            "subc": self._ex_subc,
            "cmp": self._ex_cmp,
            "dadd": self._ex_dadd,
            "and": self._ex_and,
            "bit": self._ex_bit,
            "xor": self._ex_xor,
            "bic": self._ex_bic,
            "bis": self._ex_bis,
            "rra": self._ex_rra,
            "rrc": self._ex_rrc,
            "swpb": self._ex_swpb,
            "sxt": self._ex_sxt,
            "push": self._ex_push,
            "call": self._ex_call,
            "reti": self._ex_reti,
            "jnz": self._ex_jnz,
            "jz": self._ex_jz,
            "jnc": self._ex_jnc,
            "jc": self._ex_jc,
            "jn": self._ex_jn,
            "jge": self._ex_jge,
            "jl": self._ex_jl,
            "jmp": self._ex_jmp,
        }
        if decode_cache is None:
            decode_cache = DECODE_CACHE_DEFAULT
        self._dcache: Optional[dict] = {} if decode_cache else None
        if self._dcache is not None:
            bus.bind_decode_cache(self._dcache)

    # ---- register helpers -------------------------------------------------

    def get_reg(self, num):
        return self.regs[num]

    def set_reg(self, num, value):
        value &= 0xFFFF
        if num == PC:
            value &= 0xFFFE  # instruction stream is word aligned
        self.regs[num] = value

    @property
    def pc(self):
        return self.regs[PC]

    @pc.setter
    def pc(self, value):
        self.set_reg(PC, value)

    @property
    def sp(self):
        return self.regs[SP]

    @property
    def sr(self):
        return self.regs[SR]

    @property
    def gie(self):
        return bool(self.regs[SR] & FLAG_GIE)

    def flag(self, bit):
        return bool(self.regs[SR] & bit)

    def _set_flags(self, c=None, z=None, n=None, v=None):
        sr = self.regs[SR]
        if c is not None:
            sr = (sr | FLAG_C) if c else (sr & ~FLAG_C)
        if z is not None:
            sr = (sr | FLAG_Z) if z else (sr & ~FLAG_Z)
        if n is not None:
            sr = (sr | FLAG_N) if n else (sr & ~FLAG_N)
        if v is not None:
            sr = (sr | FLAG_V) if v else (sr & ~FLAG_V)
        self.regs[SR] = sr & 0xFFFF

    # ---- reset --------------------------------------------------------------

    def reset(self):
        """Power-up/violation reset: clear registers, load the reset vector.

        The vector read models the hardware reset sequence and is not a
        CPU bus transaction, so it is untraced (monitors start clean).
        The decode cache survives: a reset changes no memory.
        """
        self.regs = [0] * NUM_REGISTERS
        self.pc = self.bus.peek_word(RESET_VECTOR)

    # ---- snapshot/restore (see repro.snapshot) ----------------------------

    def snapshot_state(self):
        """Architectural register state, JSON-safe."""
        return {
            "regs": list(self.regs),
            "total_cycles": self.total_cycles,
            "instruction_count": self.instruction_count,
        }

    def restore_state(self, state):
        """Adopt a captured register file.

        The decode cache is deliberately untouched: the caller restores
        memory first (:meth:`repro.memory.bus.Bus.restore_memory`),
        which already dropped every cached decode.
        """
        self.regs = [v & 0xFFFF for v in state["regs"]]
        self.total_cycles = state["total_cycles"]
        self.instruction_count = state["instruction_count"]

    # ---- stepping ---------------------------------------------------------

    def step(self) -> StepRecord:
        """Execute one architectural event and return its record."""
        regs = self.regs
        pc_before = regs[PC]
        bus = self.bus
        bus.current_pc = pc_before
        if bus.trace:
            bus.trace = []

        ic = self.ic
        if (ic is not None and regs[SR] & FLAG_GIE and ic.any_pending
                and not self.irq_deferred_at(pc_before)):
            return self._service_interrupt(pc_before)

        cache = self._dcache
        entry = cache.get(pc_before) if cache is not None else None
        if entry is not None:
            insn, next_pc, cycles, accesses, executor = entry
            if bus.recording:
                # Replay the monitor-visible FETCH stream; invalidation
                # guarantees the cached words still match memory.
                bus.trace.extend(accesses)
            regs[PC] = next_pc
            executor(insn)
        else:
            first_word = None
            try:
                first_word = bus.fetch_word(pc_before)
                self._fetch_addr = pc_before + 2
                insn = decode(first_word, self._fetch_ext_cb)
            except DecodingError:
                # An illegal opcode halts a real MSP430 into reset via
                # the watchdog; we surface it as an ILLEGAL step and let
                # the device reset.
                return self._illegal_step(pc_before, first_word)
            except MemoryAccessError:
                # The fetch ran off the top of the address space (e.g.
                # the extension word of a two-word instruction at
                # 0xFFFE): a fault step, not a simulator crash.
                return self._illegal_step(pc_before, first_word)
            next_pc = self._fetch_addr & 0xFFFE
            executor = self._executors[insn.opcode.mnemonic]
            cycles = instruction_cycles(insn)
            if cache is not None:
                size_words = (self._fetch_addr - pc_before) >> 1
                mem = bus.mem
                accesses = tuple(
                    Access(AccessKind.FETCH, a, mem[a] | (mem[a + 1] << 8),
                           2, pc_before)
                    for a in range(pc_before, pc_before + 2 * size_words, 2))
                cache[pc_before] = (insn, next_pc, cycles, accesses, executor)
                bus.note_code_cached(pc_before, size_words)
            regs[PC] = next_pc
            executor(insn)

        self.total_cycles += cycles
        self.instruction_count += 1
        record = StepRecord(
            kind=StepKind.INSTRUCTION,
            pc=pc_before,
            next_pc=regs[PC],
            cycles=cycles,
            accesses=bus.drain_trace(),
            insn=insn,
        )
        if self.trace_sink is not None:
            self.trace_sink.observe(record)
        return record

    def _illegal_step(self, pc_before, first_word):
        record = StepRecord(
            kind=StepKind.ILLEGAL,
            pc=pc_before,
            next_pc=pc_before,
            cycles=1,
            accesses=self.bus.drain_trace(),
            illegal_word=0 if first_word is None else first_word,
        )
        self.total_cycles += record.cycles
        return record

    def _service_interrupt(self, pc_before):
        vector = self.ic.accept()
        self._push(pc_before)
        self._push(self.regs[SR])
        # SLAU049: SR is cleared on interrupt entry (SCG0 preserved on
        # some parts; we clear fully -- the apps never use SCG0).
        self.regs[SR] = 0
        handler = self.bus.read_word(self.bus.layout.vector_address(vector))
        self.pc = handler
        self.total_cycles += INTERRUPT_CYCLES
        record = StepRecord(
            kind=StepKind.INTERRUPT,
            pc=pc_before,
            next_pc=self.pc,
            cycles=INTERRUPT_CYCLES,
            accesses=self.bus.drain_trace(),
            vector=vector,
        )
        if self.trace_sink is not None:
            self.trace_sink.observe(record)
        return record

    def _fetch_ext(self):
        addr = self._fetch_addr
        word = self.bus.fetch_word(addr)
        self._fetch_addr = addr + 2
        return word

    # ---- operand access -----------------------------------------------------

    def _read_operand(self, operand, byte_mode):
        """Read an operand's value; applies auto-increment side effects."""
        mode = operand.mode
        if mode is AddrMode.REGISTER:
            value = self.regs[operand.reg]
            return (value & 0xFF) if byte_mode else value
        if mode in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
            value = operand.value
            return (value & 0xFF) if byte_mode else value
        if mode in (AddrMode.INDIRECT, AddrMode.AUTOINC):
            addr = self.regs[operand.reg]
            value = self._load(addr, byte_mode)
            if mode is AddrMode.AUTOINC:
                step = 2 if (not byte_mode or operand.reg in (PC, SP)) else 1
                self.set_reg(operand.reg, self.regs[operand.reg] + step)
            return value
        addr = self._effective_address(operand)
        return self._load(addr, byte_mode)

    def _effective_address(self, operand):
        """EA of a memory operand (INDEXED/SYMBOLIC/ABSOLUTE/INDIRECT)."""
        mode = operand.mode
        if mode is AddrMode.INDEXED:
            return (self.regs[operand.reg] + operand.value) & 0xFFFF
        if mode is AddrMode.SYMBOLIC:
            # Our toolchain encodes symbolic operands so that
            # EA = ext_word_value; see toolchain docs.  At execution time
            # the operand already carries the resolved address.
            return operand.value
        if mode is AddrMode.ABSOLUTE:
            return operand.value
        if mode in (AddrMode.INDIRECT, AddrMode.AUTOINC):
            return self.regs[operand.reg]
        raise DecodingError(f"operand {operand} has no effective address")

    def _load(self, addr, byte_mode):
        if byte_mode:
            return self.bus.read_byte(addr)
        return self.bus.read_word(addr & 0xFFFE)

    def _store(self, addr, value, byte_mode):
        if byte_mode:
            self.bus.write_byte(addr, value)
        else:
            self.bus.write_word(addr & 0xFFFE, value)

    def _write_operand(self, operand, value, byte_mode):
        if operand.mode is AddrMode.REGISTER:
            if byte_mode:
                value &= 0xFF  # byte writes clear the upper register byte
            self.set_reg(operand.reg, value)
            return
        self._store(self._effective_address(operand), value, byte_mode)

    def _push(self, value):
        self.set_reg(SP, self.regs[SP] - 2)
        self.bus.write_word(self.regs[SP], value & 0xFFFF)

    def _pop(self):
        value = self.bus.read_word(self.regs[SP])
        self.set_reg(SP, self.regs[SP] + 2)
        return value

    # ---- execution -----------------------------------------------------------

    # -- format I (double operand) helpers --

    def _f1_read(self, insn, byte, mask):
        """Source value, destination value and destination EA (or None
        for a register destination).  Source reads first, as on the
        hardware (auto-increment side effects precede the dst read)."""
        src = self._read_operand(insn.src, byte)
        dst_op = insn.dst
        if dst_op.mode is AddrMode.REGISTER:
            return src, self.regs[dst_op.reg] & mask, None
        addr = self._effective_address(dst_op)
        return src, self._load(addr, byte), addr

    def _f1_commit(self, insn, result, dst_addr, byte):
        if dst_addr is None:
            if byte:
                result &= 0xFF
            self.set_reg(insn.dst.reg, result)
        else:
            self._store(dst_addr, result, byte)

    def _ex_mov(self, insn):
        byte = insn.byte_mode
        self._write_operand(insn.dst, self._read_operand(insn.src, byte), byte)

    def _f1_add(self, insn, use_carry):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000
        src, dst, dst_addr = self._f1_read(insn, byte, mask)
        carry_in = 1 if (use_carry and self.regs[SR] & FLAG_C) else 0
        total = src + dst + carry_in
        result = total & mask
        self._set_flags(
            c=total > mask,
            z=result == 0,
            n=bool(result & msb),
            v=bool(~(src ^ dst) & (src ^ result) & msb),
        )
        self._f1_commit(insn, result, dst_addr, byte)

    def _ex_add(self, insn):
        self._f1_add(insn, use_carry=False)

    def _ex_addc(self, insn):
        self._f1_add(insn, use_carry=True)

    def _f1_sub(self, insn, use_carry, commit):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000
        src, dst, dst_addr = self._f1_read(insn, byte, mask)
        inv = (~src) & mask
        carry_in = (1 if self.regs[SR] & FLAG_C else 0) if use_carry else 1
        total = dst + inv + carry_in
        result = total & mask
        self._set_flags(
            c=total > mask,
            z=result == 0,
            n=bool(result & msb),
            v=bool(~(inv ^ dst) & (inv ^ result) & msb),
        )
        if commit:
            self._f1_commit(insn, result, dst_addr, byte)

    def _ex_sub(self, insn):
        self._f1_sub(insn, use_carry=False, commit=True)

    def _ex_subc(self, insn):
        self._f1_sub(insn, use_carry=True, commit=True)

    def _ex_cmp(self, insn):
        self._f1_sub(insn, use_carry=False, commit=False)

    def _ex_dadd(self, insn):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        src, dst, dst_addr = self._f1_read(insn, byte, mask)
        result = self._bcd_add(src, dst, byte)
        self._f1_commit(insn, result, dst_addr, byte)

    def _f1_logic(self, insn, op, commit):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000
        src, dst, dst_addr = self._f1_read(insn, byte, mask)
        if op == "and":
            result = src & dst
            self._set_flags(c=result != 0, z=result == 0,
                            n=bool(result & msb), v=False)
        elif op == "xor":
            result = src ^ dst
            self._set_flags(
                c=result != 0,
                z=result == 0,
                n=bool(result & msb),
                v=bool(src & msb) and bool(dst & msb),
            )
        elif op == "bic":
            result = dst & ~src & mask
        else:  # bis
            result = dst | src
        if commit:
            self._f1_commit(insn, result, dst_addr, byte)

    def _ex_and(self, insn):
        self._f1_logic(insn, "and", commit=True)

    def _ex_bit(self, insn):
        self._f1_logic(insn, "and", commit=False)

    def _ex_xor(self, insn):
        self._f1_logic(insn, "xor", commit=True)

    def _ex_bic(self, insn):
        self._f1_logic(insn, "bic", commit=True)

    def _ex_bis(self, insn):
        self._f1_logic(insn, "bis", commit=True)

    def _bcd_add(self, src, dst, byte):
        """Decimal (BCD) addition with carry, per DADD semantics."""
        digits = 2 if byte else 4
        carry = 1 if self.flag(FLAG_C) else 0
        result = 0
        for digit in range(digits):
            a = (src >> (4 * digit)) & 0xF
            b = (dst >> (4 * digit)) & 0xF
            total = a + b + carry
            carry = 1 if total > 9 else 0
            if carry:
                total -= 10
            result |= total << (4 * digit)
        msb = 0x80 if byte else 0x8000
        self._set_flags(c=bool(carry), z=result == 0, n=bool(result & msb), v=False)
        return result

    # -- format II (single operand) --

    def _ex_reti(self, insn):
        self.regs[SR] = self._pop()
        self.pc = self._pop()

    def _ex_push(self, insn):
        byte = insn.byte_mode
        value = self._read_operand(insn.dst, byte)
        # PUSH.B still moves SP by a full word (SLAU049 3.4.34).
        self._push(value & (0xFF if byte else 0xFFFF))

    def _ex_call(self, insn):
        target = self._read_operand(insn.dst, byte_mode=False)
        self._push(self.regs[PC])
        self.set_reg(PC, target)

    def _f2_read(self, insn, byte, mask):
        """Read-modify-write source: value plus EA (None for register)."""
        dst_op = insn.dst
        if dst_op.mode is AddrMode.REGISTER:
            return self.regs[dst_op.reg] & mask, None
        addr = self._effective_address(dst_op)
        return self._load(addr, byte), addr

    def _f2_commit(self, insn, result, addr, byte, mask):
        if addr is None:
            self.set_reg(insn.dst.reg, result & mask)
        else:
            self._store(addr, result, byte)

    def _ex_rra(self, insn):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000
        value, addr = self._f2_read(insn, byte, mask)
        carry = value & 1
        result = (value >> 1) | (value & msb)
        self._set_flags(c=bool(carry), z=result == 0, n=bool(result & msb), v=False)
        self._f2_commit(insn, result, addr, byte, mask)

    def _ex_rrc(self, insn):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000
        value, addr = self._f2_read(insn, byte, mask)
        carry_in = msb if self.regs[SR] & FLAG_C else 0
        carry = value & 1
        result = (value >> 1) | carry_in
        self._set_flags(c=bool(carry), z=result == 0, n=bool(result & msb), v=False)
        self._f2_commit(insn, result, addr, byte, mask)

    def _ex_swpb(self, insn):
        value, addr = self._f2_read(insn, False, 0xFFFF)
        result = ((value << 8) | (value >> 8)) & 0xFFFF
        self._f2_commit(insn, result, addr, False, 0xFFFF)

    def _ex_sxt(self, insn):
        value, addr = self._f2_read(insn, False, 0xFFFF)
        result = value & 0xFF
        if result & 0x80:
            result |= 0xFF00
        self._set_flags(c=result != 0, z=result == 0, n=bool(result & 0x8000), v=False)
        self._f2_commit(insn, result, addr, False, 0xFFFF)

    # -- jumps --

    def _take_jump(self, insn):
        regs = self.regs
        regs[PC] = (regs[PC] + 2 * insn.offset) & 0xFFFE

    def _ex_jmp(self, insn):
        self._take_jump(insn)

    def _ex_jnz(self, insn):
        if not self.regs[SR] & FLAG_Z:
            self._take_jump(insn)

    def _ex_jz(self, insn):
        if self.regs[SR] & FLAG_Z:
            self._take_jump(insn)

    def _ex_jnc(self, insn):
        if not self.regs[SR] & FLAG_C:
            self._take_jump(insn)

    def _ex_jc(self, insn):
        if self.regs[SR] & FLAG_C:
            self._take_jump(insn)

    def _ex_jn(self, insn):
        if self.regs[SR] & FLAG_N:
            self._take_jump(insn)

    def _ex_jge(self, insn):
        sr = self.regs[SR]
        if bool(sr & FLAG_N) == bool(sr & FLAG_V):
            self._take_jump(insn)

    def _ex_jl(self, insn):
        sr = self.regs[SR]
        if bool(sr & FLAG_N) != bool(sr & FLAG_V):
            self._take_jump(insn)
