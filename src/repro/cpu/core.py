"""The MSP430 CPU core.

One :meth:`Cpu.step` executes a single architectural event -- interrupt
acceptance or one instruction -- updates the register file and bus, and
returns a :class:`StepRecord` carrying everything the hardware monitors
observe: the issuing PC, the resulting PC, the bus accesses, and whether
the step was an interrupt entry.

Instruction semantics and cycle counts follow SLAU049 (MSP430x1xx
Family User's Guide).  Deviations, all harmless to the EILID argument,
are documented inline.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import DecodingError
from repro.isa import decode, instruction_cycles, INTERRUPT_CYCLES
from repro.isa.opcodes import Format
from repro.isa.operands import AddrMode
from repro.isa.registers import (
    FLAG_C,
    FLAG_GIE,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    NUM_REGISTERS,
    PC,
    SP,
    SR,
)
from repro.memory.bus import Bus
from repro.memory.map import RESET_VECTOR


class StepKind(enum.Enum):
    INSTRUCTION = "instruction"
    INTERRUPT = "interrupt"
    ILLEGAL = "illegal"


@dataclass
class StepRecord:
    """Everything one step exposes to the monitors and to traces."""

    kind: StepKind
    pc: int  # PC before the step (issuing PC)
    next_pc: int  # PC after the step
    cycles: int
    accesses: list = field(default_factory=list)
    insn: Optional[object] = None  # Instruction for INSTRUCTION steps
    vector: Optional[int] = None  # vector index for INTERRUPT steps
    illegal_word: Optional[int] = None

    def __str__(self):
        if self.kind is StepKind.INTERRUPT:
            body = f"IRQ vector {self.vector}"
        elif self.kind is StepKind.ILLEGAL:
            body = f"ILLEGAL 0x{self.illegal_word:04x}"
        else:
            body = self.insn.render()
        return f"0x{self.pc:04x}: {body} ({self.cycles} cyc)"


class Cpu:
    """Register file + execution engine."""

    def __init__(self, bus: Bus, interrupt_controller=None):
        self.bus = bus
        self.regs = [0] * NUM_REGISTERS
        self.ic = interrupt_controller
        self.total_cycles = 0
        self.instruction_count = 0
        # Hardware gate: when this predicate returns True for the current
        # PC, pending interrupts are *deferred* (EILID keeps IRQs out of
        # the secure ROM to preserve atomicity).  Installed by the device.
        self.irq_deferred_at = lambda pc: False
        # Branch-trace tap: an object with .observe(StepRecord), called
        # for every architectural event (the EILID trace-attestation
        # recorder).  Installed by the device; None keeps the hot path
        # free of the extra call.
        self.trace_sink = None

    # ---- register helpers -------------------------------------------------

    def get_reg(self, num):
        return self.regs[num]

    def set_reg(self, num, value):
        value &= 0xFFFF
        if num == PC:
            value &= 0xFFFE  # instruction stream is word aligned
        self.regs[num] = value

    @property
    def pc(self):
        return self.regs[PC]

    @pc.setter
    def pc(self, value):
        self.set_reg(PC, value)

    @property
    def sp(self):
        return self.regs[SP]

    @property
    def sr(self):
        return self.regs[SR]

    @property
    def gie(self):
        return bool(self.regs[SR] & FLAG_GIE)

    def flag(self, bit):
        return bool(self.regs[SR] & bit)

    def _set_flags(self, c=None, z=None, n=None, v=None):
        sr = self.regs[SR]
        for bit, value in ((FLAG_C, c), (FLAG_Z, z), (FLAG_N, n), (FLAG_V, v)):
            if value is None:
                continue
            sr = (sr | bit) if value else (sr & ~bit)
        self.regs[SR] = sr & 0xFFFF

    # ---- reset --------------------------------------------------------------

    def reset(self):
        """Power-up/violation reset: clear registers, load the reset vector.

        The vector read models the hardware reset sequence and is not a
        CPU bus transaction, so it is untraced (monitors start clean).
        """
        self.regs = [0] * NUM_REGISTERS
        self.pc = self.bus.peek_word(RESET_VECTOR)

    # ---- stepping ---------------------------------------------------------

    def step(self) -> StepRecord:
        """Execute one architectural event and return its record."""
        pc_before = self.pc
        self.bus.current_pc = pc_before
        self.bus.drain_trace()

        if self._should_take_interrupt(pc_before):
            return self._service_interrupt(pc_before)

        first_word = self.bus.fetch_word(pc_before)
        fetch_cursor = {"addr": pc_before + 2}

        def fetch_ext():
            word = self.bus.fetch_word(fetch_cursor["addr"])
            fetch_cursor["addr"] += 2
            return word

        try:
            insn = decode(first_word, fetch_ext)
        except DecodingError:
            # An illegal opcode halts a real MSP430 into reset via the
            # watchdog; we surface it as an ILLEGAL step and let the
            # device reset.
            record = StepRecord(
                kind=StepKind.ILLEGAL,
                pc=pc_before,
                next_pc=pc_before,
                cycles=1,
                accesses=self.bus.drain_trace(),
                illegal_word=first_word,
            )
            self.total_cycles += record.cycles
            return record

        self.pc = fetch_cursor["addr"]
        self._execute(insn)
        cycles = instruction_cycles(insn)
        self.total_cycles += cycles
        self.instruction_count += 1
        record = StepRecord(
            kind=StepKind.INSTRUCTION,
            pc=pc_before,
            next_pc=self.pc,
            cycles=cycles,
            accesses=self.bus.drain_trace(),
            insn=insn,
        )
        if self.trace_sink is not None:
            self.trace_sink.observe(record)
        return record

    def _should_take_interrupt(self, pc):
        if self.ic is None or not self.gie:
            return False
        if not self.ic.any_pending:
            return False
        return not self.irq_deferred_at(pc)

    def _service_interrupt(self, pc_before):
        vector = self.ic.accept()
        self._push(pc_before)
        self._push(self.regs[SR])
        # SLAU049: SR is cleared on interrupt entry (SCG0 preserved on
        # some parts; we clear fully -- the apps never use SCG0).
        self.regs[SR] = 0
        handler = self.bus.read_word(self.bus.layout.vector_address(vector))
        self.pc = handler
        self.total_cycles += INTERRUPT_CYCLES
        record = StepRecord(
            kind=StepKind.INTERRUPT,
            pc=pc_before,
            next_pc=self.pc,
            cycles=INTERRUPT_CYCLES,
            accesses=self.bus.drain_trace(),
            vector=vector,
        )
        if self.trace_sink is not None:
            self.trace_sink.observe(record)
        return record

    # ---- operand access -----------------------------------------------------

    def _read_operand(self, operand, byte_mode):
        """Read an operand's value; applies auto-increment side effects."""
        mode = operand.mode
        if mode is AddrMode.REGISTER:
            value = self.regs[operand.reg]
            return (value & 0xFF) if byte_mode else value
        if mode in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
            value = operand.value
            return (value & 0xFF) if byte_mode else value
        if mode in (AddrMode.INDIRECT, AddrMode.AUTOINC):
            addr = self.regs[operand.reg]
            value = self._load(addr, byte_mode)
            if mode is AddrMode.AUTOINC:
                step = 2 if (not byte_mode or operand.reg in (PC, SP)) else 1
                self.set_reg(operand.reg, self.regs[operand.reg] + step)
            return value
        addr = self._effective_address(operand)
        return self._load(addr, byte_mode)

    def _effective_address(self, operand):
        """EA of a memory operand (INDEXED/SYMBOLIC/ABSOLUTE/INDIRECT)."""
        mode = operand.mode
        if mode is AddrMode.INDEXED:
            return (self.regs[operand.reg] + operand.value) & 0xFFFF
        if mode is AddrMode.SYMBOLIC:
            # Our toolchain encodes symbolic operands so that
            # EA = ext_word_value; see toolchain docs.  At execution time
            # the operand already carries the resolved address.
            return operand.value
        if mode is AddrMode.ABSOLUTE:
            return operand.value
        if mode in (AddrMode.INDIRECT, AddrMode.AUTOINC):
            return self.regs[operand.reg]
        raise DecodingError(f"operand {operand} has no effective address")

    def _load(self, addr, byte_mode):
        if byte_mode:
            return self.bus.read_byte(addr)
        return self.bus.read_word(addr & 0xFFFE)

    def _store(self, addr, value, byte_mode):
        if byte_mode:
            self.bus.write_byte(addr, value)
        else:
            self.bus.write_word(addr & 0xFFFE, value)

    def _write_operand(self, operand, value, byte_mode):
        if operand.mode is AddrMode.REGISTER:
            if byte_mode:
                value &= 0xFF  # byte writes clear the upper register byte
            self.set_reg(operand.reg, value)
            return
        self._store(self._effective_address(operand), value, byte_mode)

    def _push(self, value):
        self.set_reg(SP, self.regs[SP] - 2)
        self.bus.write_word(self.regs[SP], value & 0xFFFF)

    def _pop(self):
        value = self.bus.read_word(self.regs[SP])
        self.set_reg(SP, self.regs[SP] + 2)
        return value

    # ---- execution -----------------------------------------------------------

    def _execute(self, insn):
        fmt = insn.opcode.format
        if fmt is Format.DOUBLE:
            self._execute_double(insn)
        elif fmt is Format.SINGLE:
            self._execute_single(insn)
        else:
            self._execute_jump(insn)

    def _execute_double(self, insn):
        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000
        src = self._read_operand(insn.src, byte)
        name = insn.mnemonic

        if name == "mov":
            self._write_operand(insn.dst, src, byte)
            return

        # Every other format-I instruction reads the destination first.
        if insn.dst.mode is AddrMode.REGISTER:
            dst = self.regs[insn.dst.reg] & mask
            dst_addr = None
        else:
            dst_addr = self._effective_address(insn.dst)
            dst = self._load(dst_addr, byte)

        result = None
        if name in ("add", "addc"):
            carry_in = 1 if (name == "addc" and self.flag(FLAG_C)) else 0
            total = src + dst + carry_in
            result = total & mask
            self._set_flags(
                c=total > mask,
                z=result == 0,
                n=bool(result & msb),
                v=bool(~(src ^ dst) & (src ^ result) & msb),
            )
        elif name in ("sub", "subc", "cmp"):
            inv = (~src) & mask
            carry_in = (1 if self.flag(FLAG_C) else 0) if name == "subc" else 1
            total = dst + inv + carry_in
            result = total & mask
            self._set_flags(
                c=total > mask,
                z=result == 0,
                n=bool(result & msb),
                v=bool(~(inv ^ dst) & (inv ^ result) & msb),
            )
        elif name == "dadd":
            result = self._bcd_add(src, dst, byte)
        elif name in ("and", "bit"):
            result = src & dst
            self._set_flags(c=result != 0, z=result == 0, n=bool(result & msb), v=False)
        elif name == "xor":
            result = src ^ dst
            self._set_flags(
                c=result != 0,
                z=result == 0,
                n=bool(result & msb),
                v=bool(src & msb) and bool(dst & msb),
            )
        elif name == "bic":
            result = dst & ~src & mask
        elif name == "bis":
            result = dst | src
        else:  # pragma: no cover - table and dispatch are exhaustive
            raise DecodingError(f"unhandled format-I mnemonic {name}")

        if insn.opcode.writes_dest:
            if dst_addr is None:
                if byte:
                    result &= 0xFF
                self.set_reg(insn.dst.reg, result)
            else:
                self._store(dst_addr, result, byte)

    def _bcd_add(self, src, dst, byte):
        """Decimal (BCD) addition with carry, per DADD semantics."""
        digits = 2 if byte else 4
        carry = 1 if self.flag(FLAG_C) else 0
        result = 0
        for digit in range(digits):
            a = (src >> (4 * digit)) & 0xF
            b = (dst >> (4 * digit)) & 0xF
            total = a + b + carry
            carry = 1 if total > 9 else 0
            if carry:
                total -= 10
            result |= total << (4 * digit)
        msb = 0x80 if byte else 0x8000
        self._set_flags(c=bool(carry), z=result == 0, n=bool(result & msb), v=False)
        return result

    def _execute_single(self, insn):
        name = insn.mnemonic
        if name == "reti":
            self.regs[SR] = self._pop()
            self.pc = self._pop()
            return

        byte = insn.byte_mode
        mask = 0xFF if byte else 0xFFFF
        msb = 0x80 if byte else 0x8000

        if name == "push":
            value = self._read_operand(insn.dst, byte)
            # PUSH.B still moves SP by a full word (SLAU049 3.4.34).
            self._push(value & mask)
            return
        if name == "call":
            target = self._read_operand(insn.dst, byte_mode=False)
            self._push(self.pc)
            self.pc = target
            return

        # RRA/RRC/SWPB/SXT: read-modify-write.
        if insn.dst.mode is AddrMode.REGISTER:
            value = self.regs[insn.dst.reg] & mask
            addr = None
        else:
            addr = self._effective_address(insn.dst)
            value = self._load(addr, byte)

        if name == "rra":
            carry = value & 1
            result = (value >> 1) | (value & msb)
            self._set_flags(c=bool(carry), z=result == 0, n=bool(result & msb), v=False)
        elif name == "rrc":
            carry_in = msb if self.flag(FLAG_C) else 0
            carry = value & 1
            result = (value >> 1) | carry_in
            self._set_flags(c=bool(carry), z=result == 0, n=bool(result & msb), v=False)
        elif name == "swpb":
            result = ((value << 8) | (value >> 8)) & 0xFFFF
        elif name == "sxt":
            result = value & 0xFF
            if result & 0x80:
                result |= 0xFF00
            self._set_flags(c=result != 0, z=result == 0, n=bool(result & 0x8000), v=False)
        else:  # pragma: no cover
            raise DecodingError(f"unhandled format-II mnemonic {name}")

        if addr is None:
            self.set_reg(insn.dst.reg, result & mask)
        else:
            self._store(addr, result, byte)

    def _execute_jump(self, insn):
        take = {
            "jnz": not self.flag(FLAG_Z),
            "jz": self.flag(FLAG_Z),
            "jnc": not self.flag(FLAG_C),
            "jc": self.flag(FLAG_C),
            "jn": self.flag(FLAG_N),
            "jge": self.flag(FLAG_N) == self.flag(FLAG_V),
            "jl": self.flag(FLAG_N) != self.flag(FLAG_V),
            "jmp": True,
        }[insn.mnemonic]
        if take:
            self.pc = self.pc + 2 * insn.offset
