"""Table III: registers reserved for EILID."""

from typing import Dict, List

from repro.eilid.policy import EilidPolicy
from repro.eval.report import render_table


def generate_table3() -> List[Dict[str, str]]:
    return EilidPolicy.full().table_iii_rows()


def render_table3() -> str:
    rows = [[r["registers"], r["description"]] for r in generate_table3()]
    return render_table(
        ["Registers", "Description"],
        rows,
        title="Table III: reserved registers for EILID",
    )
