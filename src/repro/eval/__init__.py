"""Evaluation harness: regenerates every table and figure of the paper.

* Table I   -- :mod:`repro.eval.table1` (technique comparison)
* Table II  -- :mod:`repro.eval.table2` (platform instruction sets)
* Table III -- :mod:`repro.eval.table3` (reserved registers)
* Table IV  -- :mod:`repro.eval.table4` (software overhead, measured)
* Fig. 10   -- :mod:`repro.eval.figure10` (hardware overhead comparison)
* Sec. VI in-text micro numbers -- :mod:`repro.eval.microbench`

Paper-reported values live in :mod:`repro.eval.paper_data`; every
generator returns both the measured and paper values so EXPERIMENTS.md
and the benchmarks can print them side by side.
"""

from repro.eval import paper_data
from repro.eval.table1 import generate_table1, render_table1
from repro.eval.table2 import generate_table2, render_table2
from repro.eval.table3 import generate_table3, render_table3
from repro.eval.table4 import Table4Row, measure_table4, render_table4
from repro.eval.figure10 import generate_figure10, render_figure10
from repro.eval.microbench import measure_micro, render_micro

__all__ = [
    "paper_data",
    "generate_table1",
    "render_table1",
    "generate_table2",
    "render_table2",
    "generate_table3",
    "render_table3",
    "Table4Row",
    "measure_table4",
    "render_table4",
    "generate_figure10",
    "render_figure10",
    "measure_micro",
    "render_micro",
]
