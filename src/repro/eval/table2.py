"""Table II: control-transfer instruction sets of low-end platforms."""

from typing import Dict, List

from repro.isa.platforms import PLATFORMS
from repro.eval.report import render_table


def generate_table2() -> List[Dict[str, str]]:
    return [platform.table_row() for platform in PLATFORMS]


def render_table2() -> str:
    rows = [
        [r["platform"], r["call"], r["return"], r["return_from_interrupt"], r["indirect_call"]]
        for r in generate_table2()
    ]
    return render_table(
        ["Platform", "Call", "Return", "Return from Interrupt", "Indirect Call"],
        rows,
        title="Table II: instruction set in low-end platforms",
    )
