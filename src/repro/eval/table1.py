"""Table I: CFA and CFI techniques from prior work.

The table is regenerated from a structured registry rather than pasted
text, and a consistency check derives EILID's row from the *actual*
capabilities of this reproduction (which properties the instrumenter
protects and whether protection is real-time, i.e. enforced by a
monitor rather than reported to a verifier).
"""

from dataclasses import dataclass
from typing import List

from repro.eval.paper_data import PAPER_TABLE1
from repro.eval.report import check_or_blank, render_table


@dataclass(frozen=True)
class TechniqueRow:
    method: str
    work: str
    realtime: bool
    forward_edge: bool
    backward_edge: bool
    interrupt: bool
    platform: str
    summary: str


def generate_table1() -> List[TechniqueRow]:
    return [TechniqueRow(*row) for row in PAPER_TABLE1]


def eilid_row_from_implementation() -> TechniqueRow:
    """Derive EILID's row from this repo's implementation."""
    from repro.casu.monitor import MonitorPolicy
    from repro.eilid.policy import EilidPolicy

    policy = EilidPolicy.full()
    hw = MonitorPolicy.eilid()
    realtime = hw.violation_port  # checks reset the device, no verifier round-trip
    return TechniqueRow(
        method="CFI",
        work="EILID",
        realtime=realtime,
        forward_edge=policy.protect_indirect_calls,
        backward_edge=policy.protect_returns,
        interrupt=policy.protect_interrupts,
        platform="openMSP430",
        summary="Uses CASU for shadow stack",
    )


def render_table1() -> str:
    rows = []
    for row in generate_table1():
        rows.append([
            row.method,
            row.work,
            check_or_blank(row.realtime),
            check_or_blank(row.forward_edge),
            check_or_blank(row.backward_edge),
            check_or_blank(row.interrupt),
            row.platform,
            row.summary,
        ])
    return render_table(
        ["Method", "Work", "RT", "F-edge", "B-edge", "Interrupt", "Platform", "Summary"],
        rows,
        title="Table I: CFA and CFI techniques from prior work",
    )
