"""Paper-reported reference values (EILID, DATE 2025).

Everything the reproduction compares itself against lives here, with
provenance notes.  Exact values come from the paper's text and
Table IV; the HAFIX/HCFI/LO-FAT/LiteHAX bars of Fig. 10 are published
numbers from the cited papers as plotted by EILID's authors (digitised
from the figure -- marked ``approx=True``).
"""

from dataclasses import dataclass
from typing import Optional

# ---- Table IV (exact) --------------------------------------------------------

@dataclass(frozen=True)
class PaperTable4Row:
    title: str
    compile_ms_orig: float
    compile_ms_eilid: float
    size_bytes_orig: int
    size_bytes_eilid: int
    run_us_orig: float
    run_us_eilid: float

    @property
    def compile_overhead_pct(self):
        return 100.0 * (self.compile_ms_eilid - self.compile_ms_orig) / self.compile_ms_orig

    @property
    def size_overhead_pct(self):
        return 100.0 * (self.size_bytes_eilid - self.size_bytes_orig) / self.size_bytes_orig

    @property
    def run_overhead_pct(self):
        return 100.0 * (self.run_us_eilid - self.run_us_orig) / self.run_us_orig


PAPER_TABLE4 = {
    "light_sensor": PaperTable4Row("Light Sensor", 321, 419, 233, 246, 251, 277),
    "ultrasonic_ranger": PaperTable4Row("Ultrasonic Ranger", 334, 423, 296, 349, 2094, 2303),
    "fire_sensor": PaperTable4Row("Fire Sensor", 341, 484, 465, 565, 4105, 4648),
    "syringe_pump": PaperTable4Row("Syringe Pump", 318, 458, 274, 308, 2151, 2265),
    "temp_sensor": PaperTable4Row("Temp Sensor", 351, 465, 305, 325, 1257, 1327),
    "charlieplexing": PaperTable4Row("Charlieplexing", 360, 455, 325, 342, 4930, 5146),
    "lcd_sensor": PaperTable4Row("Lcd Sensor", 370, 474, 604, 642, 4877, 5005),
}

PAPER_AVG_COMPILE_OVERHEAD_PCT = 34.30
PAPER_AVG_SIZE_OVERHEAD_PCT = 10.78
PAPER_AVG_RUN_OVERHEAD_PCT = 7.35

# ---- Sec. VI in-text micro numbers (exact) ------------------------------------

PAPER_STORE_US = 11.8
PAPER_CHECK_US = 13.4
PAPER_PER_CALL_US = 25.2
PAPER_STORE_INSTRUCTIONS = 26
PAPER_CHECK_INSTRUCTIONS = 29

# ---- Fig. 10 hardware overhead comparison ----------------------------------------

@dataclass(frozen=True)
class HwOverheadPoint:
    name: str
    kind: str  # "CFI" | "CFA"
    platform: str
    luts: Optional[int]
    registers: Optional[int]
    approx: bool = False  # digitised from the figure rather than stated in text
    note: str = ""


# EILID / Tiny-CFA / ACFA numbers are stated exactly in the paper's text.
FIG10_SERIES = [
    HwOverheadPoint("EILID", "CFI", "openMSP430", 99, 34,
                    note="paper Sec. VI: +99 LUTs (5.3%), +34 regs (4.9%)"),
    HwOverheadPoint("HAFIX", "CFI", "Intel Siskiyou Peak", 2360, 1180, approx=True,
                    note="DAC'15; bar heights from Fig. 10"),
    HwOverheadPoint("HCFI", "CFI", "Leon3 SPARC V8", 2740, 1820, approx=True,
                    note="CODASPY'16; bar heights from Fig. 10"),
    HwOverheadPoint("Tiny-CFA", "CFA", "openMSP430", 302, 44,
                    note="paper Sec. VI: +302 LUTs (16.2%), +44 regs (6.4%)"),
    HwOverheadPoint("ACFA", "CFA", "openMSP430", 501, 946,
                    note="paper Sec. VI: +501 LUTs (26.9%), +946 regs (136.7%)"),
    HwOverheadPoint("LO-FAT", "CFA", "Pulpino", 4430, 8320, approx=True,
                    note="DAC'17; bar heights from Fig. 10; also needs 216KB RAM"),
    HwOverheadPoint("LiteHAX", "CFA", "Pulpino", 4100, 6550, approx=True,
                    note="ICCAD'18; bar heights from Fig. 10; also needs 158KB RAM"),
]

OPENMSP430_BASELINE_LUTS = 1868  # 99/0.053
OPENMSP430_BASELINE_REGISTERS = 694  # 34/0.049

# RAM requirements cited in Sec. VI (why 32-bit schemes cannot fit).
LOFAT_RAM_KB = 216
LITEHAX_RAM_KB = 158
MSP430_ADDRESS_SPACE_KB = 64

# ---- Table I (qualitative, exact from the paper) -----------------------------------

PAPER_TABLE1 = [
    # (method, work, realtime, f_edge, b_edge, interrupt, platform, summary)
    ("CFI", "HAFIX", True, False, True, False, "Intel Siskiyou Peak",
     "Extends Intel ISA with shadow stack"),
    ("CFI", "HCFI", True, True, True, False, "Leon3",
     "Extends Sparc V8 ISA with shadow stack and labels"),
    ("CFI", "FIXER", True, True, True, False, "RocketChip",
     "Extends RISC-V ISA with shadow stack"),
    ("CFI", "Silhouette", True, True, True, True, "ARMv7-M",
     "Uses ARM MPU for hardened shadow-stacks and labels"),
    ("CFI", "CaRE", True, False, True, True, "ARMv8-M",
     "Uses ARM TrustZone for shadow stack & nested interrupts"),
    ("CFA", "Tiny-CFA", False, True, True, False, "openMSP430",
     "Hybrid CFA with shadow stack"),
    ("CFA", "ACFA", False, True, True, True, "openMSP430",
     "Active hybrid CFA with secure auditing of code"),
    ("CFA", "LO-FAT", False, True, True, False, "Pulpino",
     "Hardware-based CFA solution"),
    ("CFA", "CFA+", False, True, True, True, "ARMv8.5-A",
     "Leverages ARM's Branch Target Identification"),
    ("CFI", "EILID", True, True, True, True, "openMSP430",
     "Uses CASU for shadow stack"),
]
