"""ASCII rendering helpers for tables and bar charts."""

from typing import Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Simple aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(labels: Sequence[str], values: Sequence[float], width=50,
                title: Optional[str] = None, unit="") -> str:
    """Horizontal ASCII bar chart (the Fig. 10 rendering)."""
    peak = max(values) if values else 1
    label_width = max(len(label) for label in labels) if labels else 0
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def check_or_blank(flag: bool) -> str:
    return "v" if flag else ""
