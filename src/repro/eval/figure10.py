"""Figure 10: hardware overhead comparison (LUTs and registers).

EILID's own point is *computed* from the structural cost model of the
monitor (`repro.casu.hwmodel`); the comparison series are the published
numbers (see :mod:`repro.eval.paper_data` for provenance).
"""

from dataclasses import dataclass
from typing import List

from repro.casu.hwmodel import HardwareCostModel
from repro.eval.paper_data import (
    FIG10_SERIES,
    LITEHAX_RAM_KB,
    LOFAT_RAM_KB,
    MSP430_ADDRESS_SPACE_KB,
    OPENMSP430_BASELINE_LUTS,
    OPENMSP430_BASELINE_REGISTERS,
)
from repro.eval.report import render_bars, render_table


@dataclass
class Figure10Data:
    names: List[str]
    kinds: List[str]
    platforms: List[str]
    luts: List[int]
    registers: List[int]
    model: HardwareCostModel

    @property
    def eilid_lut_pct(self):
        return self.model.lut_overhead_pct

    @property
    def eilid_register_pct(self):
        return self.model.register_overhead_pct


def generate_figure10() -> Figure10Data:
    model = HardwareCostModel(
        baseline_luts=OPENMSP430_BASELINE_LUTS,
        baseline_registers=OPENMSP430_BASELINE_REGISTERS,
    )
    names, kinds, platforms, luts, regs = [], [], [], [], []
    for point in FIG10_SERIES:
        names.append(point.name)
        kinds.append(point.kind)
        platforms.append(point.platform)
        if point.name == "EILID":
            # computed from the monitor structure, not pasted
            luts.append(model.extension_luts)
            regs.append(model.extension_registers)
        else:
            luts.append(point.luts)
            regs.append(point.registers)
    return Figure10Data(names, kinds, platforms, luts, regs, model)


def render_figure10(data: Figure10Data = None) -> str:
    data = data or generate_figure10()
    parts = [
        render_bars(
            data.names,
            data.luts,
            title="Figure 10(a): additional LUTs over each scheme's baseline core",
        ),
        "",
        render_bars(
            data.names,
            data.registers,
            title="Figure 10(b): additional registers over each scheme's baseline core",
        ),
        "",
        render_table(
            ["block", "LUTs", "registers"],
            [[name, l, r] for name, (l, r) in data.model.breakdown().items()]
            + [["total", data.model.extension_luts, data.model.extension_registers]],
            title=(
                f"EILID structural breakdown "
                f"(+{data.model.extension_luts} LUTs = {data.eilid_lut_pct:.1f}%, "
                f"+{data.model.extension_registers} regs = {data.eilid_register_pct:.1f}% "
                f"over openMSP430)"
            ),
        ),
        "",
        (
            f"note: LO-FAT needs {LOFAT_RAM_KB}KB and LiteHAX {LITEHAX_RAM_KB}KB of RAM, "
            f"beyond the {MSP430_ADDRESS_SPACE_KB}KB address space of a 16-bit MSP430 "
            "(paper Sec. VI)."
        ),
    ]
    return "\n".join(parts)
