"""Sec. VI micro measurements: per-operation instrumentation cost.

The paper reports ~25.2 us per protected call (store ~11.8 us +
check ~13.4 us at their clock) and 26/29 instructions on the store and
check paths.  This harness executes a single protected call on the
simulator and attributes cycles and dynamic instructions to the store
path (inserted `mov`+`call`, shim, ROM store, leave) and the check path
(inserted `mov`+`call`, shim, ROM check, leave), by tracing PC between
listing anchors.
"""

from dataclasses import dataclass

from repro.device import build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.eval.paper_data import (
    PAPER_CHECK_INSTRUCTIONS,
    PAPER_CHECK_US,
    PAPER_PER_CALL_US,
    PAPER_STORE_INSTRUCTIONS,
    PAPER_STORE_US,
)
from repro.eval.report import render_table
from repro.minicc import compile_c
from repro.toolchain.listing import parse_listing

_MICRO_C = """
int out;

int work(int v) {
    return v + 1;
}

void main() {
    out = work(41);
    __mmio_write(0x0070, out);
}
"""


@dataclass
class MicroResult:
    store_cycles: int
    check_cycles: int
    store_instructions: int
    check_instructions: int

    @property
    def store_us(self):
        return self.store_cycles / 100.0

    @property
    def check_us(self):
        return self.check_cycles / 100.0

    @property
    def per_call_us(self):
        return self.store_us + self.check_us

    @property
    def check_to_store_ratio(self):
        return self.check_cycles / self.store_cycles

    @property
    def paper_ratio(self):
        return PAPER_CHECK_US / PAPER_STORE_US


def _span(device, start, end, max_steps=500):
    """Run from *start* to *end* PC, returning (cycles, instructions)."""
    # advance to start
    for _ in range(max_steps):
        if device.cpu.pc == start:
            break
        device.step()
    assert device.cpu.pc == start, "anchor not reached"
    cycles = instructions = 0
    for _ in range(max_steps):
        record, violation = device.step()
        assert violation is None
        cycles += record.cycles
        instructions += 1
        if device.cpu.pc == end:
            return cycles, instructions
    raise AssertionError("end anchor not reached")


def measure_micro() -> MicroResult:
    builder = IterativeBuild()
    asm = compile_c(_MICRO_C, "micro")
    result = builder.build_eilid(asm, "micro.s", verify_convergence=True)
    listing = parse_listing(result.final.listing)

    store_call = check_call = None
    for entry in listing.instructions("call"):
        if not listing.in_unit(entry.addr, "micro.s"):
            continue
        if entry.note == "NS_EILID_store_ra" and store_call is None:
            store_call = entry
        if entry.note == "NS_EILID_check_ra" and check_call is None:
            check_call = entry

    assert store_call is not None and check_call is not None
    # The store sequence starts at the `mov #ra, r6` 4 bytes before the
    # shim call and ends when control reaches the original `call #work`.
    store_start = store_call.addr - 4
    store_end = listing.next_address(store_call.addr)
    # The check sequence starts at `mov 0(r1), r6` and ends at the
    # original `ret` instruction.
    check_start = check_call.addr - 4
    check_end = listing.next_address(check_call.addr)

    device = build_device(result.final.program, security="eilid")
    store_cycles, store_insns = _span(device, store_start, store_end)
    check_cycles, check_insns = _span(device, check_start, check_end)
    return MicroResult(store_cycles, check_cycles, store_insns, check_insns)


def render_micro(result: MicroResult = None) -> str:
    result = result or measure_micro()
    rows = [
        ["store path", f"{result.store_cycles} cyc", f"{result.store_us:.2f}",
         f"{PAPER_STORE_US}", result.store_instructions, PAPER_STORE_INSTRUCTIONS],
        ["check path", f"{result.check_cycles} cyc", f"{result.check_us:.2f}",
         f"{PAPER_CHECK_US}", result.check_instructions, PAPER_CHECK_INSTRUCTIONS],
        ["per call", f"{result.store_cycles + result.check_cycles} cyc",
         f"{result.per_call_us:.2f}", f"{PAPER_PER_CALL_US}", "", ""],
        ["check/store", "", f"{result.check_to_store_ratio:.2f}x",
         f"{result.paper_ratio:.2f}x", "", ""],
    ]
    return render_table(
        ["path", "cycles", "us (measured)", "us (paper)", "insns", "insns (paper)"],
        rows,
        title="Sec. VI micro: per-operation instrumentation cost",
    )
