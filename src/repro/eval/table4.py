"""Table IV: EILID software overhead, measured on this reproduction.

For every application the harness measures:

* **compile time** -- median wall-clock of the full build pipeline over
  *repeats* runs with cold caches (original: one build; EILID: the
  three-build Fig. 2 flow plus two instrumentation passes);
* **binary size** -- application ``.text + .data`` bytes in the linked
  image (runtime modules excluded in both variants);
* **running time** -- device cycles to the DONE hand-off at 100 MHz.

Paper values are attached to every row for side-by-side reporting.
"""

import statistics
import time
from dataclasses import dataclass
from typing import Dict, List

from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.apps.runtime import run_app
from repro.eilid.iterbuild import IterativeBuild
from repro.eval.paper_data import (
    PAPER_AVG_COMPILE_OVERHEAD_PCT,
    PAPER_AVG_RUN_OVERHEAD_PCT,
    PAPER_AVG_SIZE_OVERHEAD_PCT,
    PAPER_TABLE4,
)
from repro.eval.report import render_table
from repro.minicc import compile_c


@dataclass
class Table4Row:
    name: str
    title: str
    compile_ms_orig: float
    compile_ms_eilid: float
    size_bytes_orig: int
    size_bytes_eilid: int
    run_us_orig: float
    run_us_eilid: float

    def _pct(self, new, old):
        return 100.0 * (new - old) / old if old else 0.0

    @property
    def compile_overhead_pct(self):
        return self._pct(self.compile_ms_eilid, self.compile_ms_orig)

    @property
    def size_overhead_pct(self):
        return self._pct(self.size_bytes_eilid, self.size_bytes_orig)

    @property
    def run_overhead_pct(self):
        return self._pct(self.run_us_eilid, self.run_us_orig)

    @property
    def paper(self):
        return PAPER_TABLE4[self.name]


def _timed_original_build(spec):
    """One cold original build, C frontend included, returns ms."""
    t0 = time.perf_counter()
    builder = IterativeBuild()
    asm = compile_c(spec.c_source, spec.name)
    builder.build_original(asm, f"{spec.name}.s")
    return (time.perf_counter() - t0) * 1000


def _timed_eilid_build(spec):
    """One cold Fig. 2 build (C frontend compiled once, reused across
    the three iterations like a make-style build), returns ms."""
    t0 = time.perf_counter()
    builder = IterativeBuild()
    asm = compile_c(spec.c_source, spec.name)
    builder.build_eilid(asm, f"{spec.name}.s")
    return (time.perf_counter() - t0) * 1000


def measure_app(name, repeats=5) -> Table4Row:
    spec = APPS[name]

    compile_orig = statistics.median(_timed_original_build(spec) for _ in range(repeats))
    compile_eilid = statistics.median(_timed_eilid_build(spec) for _ in range(repeats))

    builder = IterativeBuild()
    asm = compile_c(spec.c_source, spec.name)
    orig_build = builder.build_original(asm, f"{spec.name}.s")
    eilid_build = builder.build_eilid(asm, f"{spec.name}.s", verify_convergence=True).final

    run_orig = run_app(spec, "original")
    run_eilid = run_app(spec, "eilid")
    if not (run_orig.done and run_eilid.done):
        raise RuntimeError(f"{name}: application did not reach DONE")
    if run_eilid.violations:
        raise RuntimeError(f"{name}: benign run hit {run_eilid.violations}")

    return Table4Row(
        name=name,
        title=spec.title,
        compile_ms_orig=compile_orig,
        compile_ms_eilid=compile_eilid,
        size_bytes_orig=orig_build.app_code_bytes,
        size_bytes_eilid=eilid_build.app_code_bytes,
        run_us_orig=run_orig.run_time_us,
        run_us_eilid=run_eilid.run_time_us,
    )


def measure_table4(repeats=5, apps=None) -> List[Table4Row]:
    names = list(apps) if apps is not None else list(TABLE_IV_ORDER)
    return [measure_app(name, repeats=repeats) for name in names]


def averages(rows: List[Table4Row]) -> Dict[str, float]:
    return {
        "compile_pct": sum(r.compile_overhead_pct for r in rows) / len(rows),
        "size_pct": sum(r.size_overhead_pct for r in rows) / len(rows),
        "run_pct": sum(r.run_overhead_pct for r in rows) / len(rows),
    }


def render_table4(rows: List[Table4Row]) -> str:
    body = []
    for r in rows:
        p = r.paper
        body.append([
            r.title,
            f"{r.compile_ms_orig:.1f}/{r.compile_ms_eilid:.1f}",
            f"{r.compile_overhead_pct:.2f}%",
            f"{r.size_bytes_orig}/{r.size_bytes_eilid}",
            f"{r.size_overhead_pct:.2f}%",
            f"{p.size_overhead_pct:.2f}%",
            f"{r.run_us_orig:.0f}/{r.run_us_eilid:.0f}",
            f"{r.run_overhead_pct:.2f}%",
            f"{p.run_overhead_pct:.2f}%",
        ])
    avg = averages(rows)
    body.append([
        "Average",
        "",
        f"{avg['compile_pct']:.2f}%",
        "",
        f"{avg['size_pct']:.2f}%",
        f"{PAPER_AVG_SIZE_OVERHEAD_PCT:.2f}%",
        "",
        f"{avg['run_pct']:.2f}%",
        f"{PAPER_AVG_RUN_OVERHEAD_PCT:.2f}%",
    ])
    note = (
        f"(paper averages: compile {PAPER_AVG_COMPILE_OVERHEAD_PCT:.2f}%, "
        f"size {PAPER_AVG_SIZE_OVERHEAD_PCT:.2f}%, run {PAPER_AVG_RUN_OVERHEAD_PCT:.2f}%)"
    )
    return render_table(
        [
            "Software",
            "compile ms (o/e)",
            "compile ovh",
            "size B (o/e)",
            "size ovh",
            "paper",
            "run us (o/e)",
            "run ovh",
            "paper",
        ],
        body,
        title="Table IV: EILID software overhead " + note,
    )
