"""Binary control-flow analysis and trace attestation.

This package gives the verifier an *independent* view of a firmware
image's control flow and the machinery to check live execution
evidence against it -- the layer OAT (control-flow trace replay) and
CFI CaRE (binary-derived branch policy) motivate on top of EILID's
device-side enforcement.  Three stages:

1. **Recovery** (:mod:`repro.cfg.recover`) -- disassemble the linked
   image through :mod:`repro.isa.decode`, split it into basic blocks,
   and rebuild per-function CFGs plus an interprocedural call graph.
   Indirect-call target sets are seeded from the EILID call-table
   registrations found in the binary itself; uninstrumented firmware
   falls back to discovered function entries.
2. **Policy compilation** (:mod:`repro.cfg.policy`) -- distil the CFG
   into a cacheable, JSON-serialisable :class:`CfiPolicy` (valid
   return sites, indirect-target sets, ISR entry/exit mapping,
   per-site static transfer targets) with a stable digest, and
   cross-check it against the instrumenter's listing-derived view
   (:func:`diff_against_listing`).
3. **Trace attestation** (:mod:`repro.cfg.trace` +
   :mod:`repro.cfg.replay`) -- a bounded device-side branch-trace
   recorder (ring buffer of taken edges with a chained rolling
   digest) and a verifier-side replayer that re-executes the trace
   over the recovered CFG with a shadow call/interrupt stack.  The
   fleet layer embeds the trace digest in the MAC'd attestation
   report and quarantines devices whose traces are forged or do not
   replay.

CLI: ``eilid cfg build|verify-trace|diff`` (see :mod:`repro.cli`).
"""

from repro.cfg.policy import (
    CfiPolicy,
    Transfer,
    compile_policy,
    diff_against_listing,
    listing_view,
    policy_for_program,
)
from repro.cfg.recover import (
    BasicBlock,
    CallSite,
    CfgError,
    DecodedInsn,
    FunctionCfg,
    RecoveredCfg,
    TransferKind,
    classify_insn,
    disassemble,
    recover_cfg,
)
from repro.cfg.replay import ReplayResult, TraceReplayer, replay_trace
from repro.cfg.trace import (
    BranchTraceRecorder,
    TraceSnapshot,
    capture_trace,
    classify_step,
    fold_edges,
)

__all__ = [
    "BasicBlock",
    "BranchTraceRecorder",
    "CallSite",
    "CfgError",
    "CfiPolicy",
    "DecodedInsn",
    "FunctionCfg",
    "RecoveredCfg",
    "ReplayResult",
    "TraceReplayer",
    "TraceSnapshot",
    "Transfer",
    "TransferKind",
    "capture_trace",
    "classify_insn",
    "classify_step",
    "compile_policy",
    "diff_against_listing",
    "disassemble",
    "fold_edges",
    "listing_view",
    "policy_for_program",
    "recover_cfg",
    "replay_trace",
]
