"""CFI policy compilation: RecoveredCfg -> cacheable verifier artifact.

A :class:`CfiPolicy` is the distilled, serialisable form of a recovered
CFG -- exactly what a verifier needs to replay a branch trace:

* ``transfers``       -- every control-transfer instruction address,
  with its kind, static target (direct transfers) and return site
  (calls);
* ``return_sites``    -- the valid return addresses (P1 universe);
* ``indirect_targets``-- the legal indirect-call destinations (P3);
* ``isr_handlers``    -- vector -> handler entry (P2);
* ``code_ranges``     -- executable spans (W-xor-X universe);
* ``halt_address``    -- the ``__halt`` parking address; the device's
  ROM-invocation convention returns there without a matching call
  edge (see :meth:`Device.call_routine`), so the replayer accepts it.

Policies serialise to canonical JSON (``to_json``/``from_json``) and
carry a stable SHA-256 ``digest`` so fleets can cache one artifact per
firmware image.  :func:`diff_against_listing` cross-checks the
binary-derived policy against the instrumenter's listing-derived view
and returns human-readable divergences (empty == the two toolpaths
agree, the Fig. 2 contract holds end to end).
"""

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cfg.recover import RecoveredCfg, TransferKind, recover_cfg
from repro.toolchain.listing import parse_listing

POLICY_FORMAT = "eilid-cfi-policy/1"

# Transfer kinds as stored in the artifact (enum values).
_KIND_VALUES = {kind.value: kind for kind in TransferKind}


@dataclass(frozen=True)
class Transfer:
    kind: str  # TransferKind value
    target: Optional[int] = None  # static destination, direct transfers
    return_site: Optional[int] = None  # call instructions only


@dataclass(frozen=True)
class CfiPolicy:
    name: str
    entry: int
    transfers: Dict[int, Transfer]
    return_sites: frozenset
    indirect_targets: frozenset
    indirect_from_table: bool
    function_entries: Tuple[Tuple[int, str], ...]  # sorted (addr, name)
    isr_handlers: Dict[int, int]  # vector index -> handler address
    reti_sites: frozenset
    code_ranges: Tuple[Tuple[int, int], ...]
    halt_address: Optional[int]

    # ---- queries used by the replayer -------------------------------------

    def in_code(self, addr: int) -> bool:
        return any(start <= addr <= end for start, end in self.code_ranges)

    @property
    def handler_addresses(self) -> frozenset:
        return frozenset(self.isr_handlers.values())

    # ---- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": POLICY_FORMAT,
            "name": self.name,
            "entry": self.entry,
            "transfers": {
                f"0x{addr:04x}": [t.kind, t.target, t.return_site]
                for addr, t in sorted(self.transfers.items())
            },
            "return_sites": sorted(self.return_sites),
            "indirect_targets": sorted(self.indirect_targets),
            "indirect_from_table": self.indirect_from_table,
            "function_entries": [list(pair) for pair in self.function_entries],
            "isr_handlers": {str(v): h for v, h in sorted(self.isr_handlers.items())},
            "reti_sites": sorted(self.reti_sites),
            "code_ranges": [list(span) for span in self.code_ranges],
            "halt_address": self.halt_address,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @staticmethod
    def from_dict(data: dict) -> "CfiPolicy":
        if data.get("format") != POLICY_FORMAT:
            raise ValueError(f"unsupported policy format {data.get('format')!r}")
        transfers = {}
        for key, (kind, target, return_site) in data["transfers"].items():
            if kind not in _KIND_VALUES:
                raise ValueError(f"unknown transfer kind {kind!r}")
            transfers[int(key, 16)] = Transfer(kind, target, return_site)
        return CfiPolicy(
            name=data["name"],
            entry=data["entry"],
            transfers=transfers,
            return_sites=frozenset(data["return_sites"]),
            indirect_targets=frozenset(data["indirect_targets"]),
            indirect_from_table=data["indirect_from_table"],
            function_entries=tuple(
                (addr, name) for addr, name in data["function_entries"]
            ),
            isr_handlers={int(v): h for v, h in data["isr_handlers"].items()},
            reti_sites=frozenset(data["reti_sites"]),
            code_ranges=tuple(tuple(span) for span in data["code_ranges"]),
            halt_address=data["halt_address"],
        )

    @staticmethod
    def from_json(text: str) -> "CfiPolicy":
        return CfiPolicy.from_dict(json.loads(text))


def compile_policy(cfg: RecoveredCfg, symbols: Optional[dict] = None) -> CfiPolicy:
    """Serialise a recovered CFG into its verifier policy artifact."""
    transfers: Dict[int, Transfer] = {}
    for addr, decoded in cfg.insns.items():
        if decoded.kind is TransferKind.NONE:
            continue
        return_site = None
        if decoded.kind in (TransferKind.CALL, TransferKind.CALL_INDIRECT):
            return_site = decoded.next_addr
        transfers[addr] = Transfer(decoded.kind.value, decoded.target, return_site)

    halt = None
    if symbols and "__halt" in symbols:
        halt = symbols["__halt"]

    return CfiPolicy(
        name=cfg.name,
        entry=cfg.entry,
        transfers=transfers,
        return_sites=frozenset(cfg.return_sites),
        indirect_targets=frozenset(cfg.indirect_targets),
        indirect_from_table=cfg.indirect_targets_registered,
        function_entries=tuple(sorted(cfg.function_entries.items())),
        # Vector 15 is the reset vector, not an interrupt: a recorded
        # irq edge may never claim it as its handler.
        isr_handlers={v: h for v, h in cfg.vectors.items() if v != 15},
        reti_sites=frozenset(cfg.reti_sites),
        code_ranges=cfg.code_ranges,
        halt_address=halt,
    )


def policy_for_program(program, name: Optional[str] = None) -> CfiPolicy:
    """One-call convenience: recover the CFG and compile its policy."""
    return compile_policy(recover_cfg(program, name=name), symbols=program.symbols)


# ---------------------------------------------------------------------------
# Cross-check against the instrumenter's listing-derived view
# ---------------------------------------------------------------------------


def listing_view(listing_text: str, store_ind_symbol: str = "NS_EILID_store_ind"):
    """The (return_sites, indirect_targets) pair the *listing* implies.

    This is the instrumenter's world view: return addresses are "the
    address of the instruction after each call" (paper Sec. IV-A), and
    the indirect-target set is whatever the inserted registration pairs
    (``mov #f, r6`` / ``call #NS_EILID_store_ind``) load at ``main``.
    """
    listing = parse_listing(listing_text)
    return_sites = set()
    registrations: List[int] = []
    pending_mov_value = None
    pending_mov_addr = None
    for entry in listing.instructions():
        text = entry.text
        if text.startswith("call"):
            return_sites.add(listing.next_address(entry.addr))
            if (
                entry.note == store_ind_symbol
                and pending_mov_addr is not None
                and pending_mov_addr + _entry_size(listing, pending_mov_addr)
                == entry.addr
            ):
                registrations.append(pending_mov_value)
        if text.startswith("mov #") and text.endswith(", r6"):
            value = text[len("mov #"):-len(", r6")]
            try:
                pending_mov_value = int(value, 0) & 0xFFFF
                pending_mov_addr = entry.addr
            except ValueError:
                pending_mov_value = pending_mov_addr = None
        elif not text.startswith("call"):
            pending_mov_value = pending_mov_addr = None
    return return_sites, registrations


def _entry_size(listing, addr):
    return listing.by_addr[addr].size


def diff_against_listing(policy: CfiPolicy, listing_text: str) -> List[str]:
    """Divergences between the binary-derived policy and the listing.

    Empty list == the CFG recovery and the instrumenter/listing agree
    on every protected return site and every indirect-call target.
    """
    lst_returns, lst_registrations = listing_view(listing_text)
    divergences: List[str] = []

    missing = sorted(lst_returns - policy.return_sites)
    extra = sorted(policy.return_sites - lst_returns)
    for addr in missing:
        divergences.append(f"return site 0x{addr:04x} in listing but not in CFG")
    for addr in extra:
        divergences.append(f"return site 0x{addr:04x} in CFG but not in listing")

    if lst_registrations:
        lst_targets = set(lst_registrations)
        if not policy.indirect_from_table:
            divergences.append(
                "listing registers an indirect-call table but the CFG found none"
            )
        else:
            for addr in sorted(lst_targets - policy.indirect_targets):
                divergences.append(
                    f"indirect target 0x{addr:04x} registered in listing, "
                    "missing from CFG policy"
                )
            for addr in sorted(policy.indirect_targets - lst_targets):
                divergences.append(
                    f"indirect target 0x{addr:04x} in CFG policy, "
                    "never registered in listing"
                )
    elif policy.indirect_from_table:
        divergences.append(
            "CFG found indirect-call table registrations the listing lacks"
        )
    return divergences
