"""Trace replay: validate a recorded branch trace against a CFI policy.

The replayer walks the edge window of a :class:`TraceSnapshot` and
checks every taken edge against the statically recovered CFG:

* **direct transfers** (``call #f``, ``jmp``/``jcc``, ``br #f``) must
  land exactly on their encoded target;
* **indirect calls** must land inside the policy's indirect-target set
  (the EILID call table, or the discovered function entries for
  uninstrumented firmware);
* **returns** are replayed against a verifier-side shadow stack: each
  call pushes its static return site, each ``ret`` must pop a matching
  frame (OAT-style backward-edge replay);
* **interrupt entries** push the interrupted PC; each ``reti`` must
  pop exactly that PC -- a tampered saved context cannot replay;
* every edge destination must lie inside an executable range, so a
  diverted return into RAM shellcode fails before any stack logic.

Ring-buffer truncation (``snapshot.dropped > 0``) switches the
replayer to *windowed* mode: a return or ``reti`` that under-runs the
reconstructed stack is then checked against the static return-site /
code universe instead of being rejected outright, because its matching
call may have been evicted.  Untruncated traces get the strict
treatment.  The device's ROM-invocation convention (a routine invoked
by pushing ``__halt`` directly, see ``Device.call_routine``) is the one
sanctioned stack-less return and is allowed by ``halt_address``.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cfg.policy import CfiPolicy
from repro.cfg.trace import (
    EDGE_CALL,
    EDGE_IRQ,
    EDGE_JUMP,
    EDGE_RET,
    EDGE_RETI,
    TraceSnapshot,
)
from repro.cfg.recover import TransferKind

# Static transfer kinds a recorded edge kind may correspond to.
_EDGE_COMPATIBLE = {
    EDGE_CALL: {TransferKind.CALL.value, TransferKind.CALL_INDIRECT.value},
    EDGE_JUMP: {
        TransferKind.JUMP.value,
        TransferKind.COND_JUMP.value,
        TransferKind.JUMP_INDIRECT.value,
    },
    EDGE_RET: {TransferKind.RET.value},
    EDGE_RETI: {TransferKind.RETI.value},
}

_FRAME_CALL = "call"
_FRAME_IRQ = "irq"


@dataclass
class ReplayResult:
    ok: bool
    reason: str = ""
    edges_checked: int = 0
    failed_index: Optional[int] = None
    failed_edge: Optional[Tuple[int, int, str]] = None

    def __str__(self):
        if self.ok:
            return f"replay ok ({self.edges_checked} edges)"
        src, dst, kind = self.failed_edge or (0, 0, "?")
        return (f"replay REJECTED at edge {self.failed_index} "
                f"({kind} 0x{src:04x}->0x{dst:04x}): {self.reason}")


class TraceReplayer:
    """Replays traces against one firmware's :class:`CfiPolicy`."""

    def __init__(self, policy: CfiPolicy):
        self.policy = policy

    def replay(self, snapshot: TraceSnapshot,
               check_digest: bool = True) -> ReplayResult:
        """Validate *snapshot*; digest consistency first, then the walk."""
        if check_digest and not snapshot.consistent():
            return ReplayResult(
                False, "edge window does not fold to the reported digest",
                edges_checked=0, failed_index=None, failed_edge=None)
        return self.replay_edges(snapshot.edges, windowed=snapshot.windowed)

    def replay_edges(self, edges, windowed: bool = False) -> ReplayResult:
        policy = self.policy
        stack: List[Tuple[str, int]] = []
        handlers = policy.handler_addresses

        for index, (src, dst, kind) in enumerate(edges):

            def reject(reason):
                return ReplayResult(False, reason, index, index, (src, dst, kind))

            if not policy.in_code(dst):
                return reject("edge target outside executable code")

            if kind == EDGE_IRQ:
                # Interrupts may preempt any instruction; the handler
                # must be one the IVT names, and the interrupted PC is
                # what the matching reti must restore.
                if dst not in handlers:
                    return reject("interrupt entry to a non-IVT handler")
                stack.append((_FRAME_IRQ, src))
                continue

            transfer = policy.transfers.get(src)
            if transfer is None:
                return reject("edge from a non-control-transfer instruction")
            if kind not in _EDGE_COMPATIBLE or transfer.kind not in _EDGE_COMPATIBLE[kind]:
                return reject(
                    f"recorded {kind} edge but 0x{src:04x} is a {transfer.kind}")

            if kind == EDGE_CALL:
                if transfer.kind == TransferKind.CALL.value:
                    if dst != transfer.target:
                        return reject("direct call diverted from encoded target")
                elif dst not in policy.indirect_targets:
                    return reject("indirect call target not in the call table")
                stack.append((_FRAME_CALL, transfer.return_site))
            elif kind == EDGE_JUMP:
                if transfer.kind == TransferKind.JUMP_INDIRECT.value:
                    return reject("indirect jump (forbidden by policy)")
                if dst != transfer.target:
                    return reject("jump diverted from encoded target")
            elif kind == EDGE_RET:
                if dst == policy.halt_address:
                    continue  # ROM-invocation convention: see module docs
                if stack:
                    frame_kind, expected = stack.pop()
                    if frame_kind != _FRAME_CALL:
                        return reject("return while an interrupt frame is open")
                    if dst != expected:
                        return reject("return address does not match call site")
                elif windowed:
                    if dst not in policy.return_sites:
                        return reject("underflowed return to a non-return-site")
                else:
                    return reject("return with an empty call stack")
            elif kind == EDGE_RETI:
                if stack:
                    frame_kind, expected = stack.pop()
                    if frame_kind != _FRAME_IRQ:
                        return reject("reti while a call frame is open")
                    if dst != expected:
                        return reject("reti does not restore the interrupted PC")
                elif not windowed:
                    return reject("reti with an empty interrupt stack")
                # windowed + empty stack: the matching irq edge was
                # evicted; in-code destination (checked above) suffices.
            else:
                return reject(f"unknown edge kind {kind!r}")

        return ReplayResult(True, edges_checked=len(edges))


def replay_trace(policy: CfiPolicy, snapshot: TraceSnapshot,
                 check_digest: bool = True) -> ReplayResult:
    """Module-level convenience wrapper."""
    return TraceReplayer(policy).replay(snapshot, check_digest=check_digest)
