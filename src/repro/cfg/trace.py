"""Branch-trace recording: the device-side half of trace attestation.

A :class:`BranchTraceRecorder` observes every :class:`StepRecord` the
CPU produces and keeps the *taken* control-flow edges -- calls, taken
jumps/branches, returns, interrupt entries and interrupt returns -- in
a bounded ring buffer.  Straight-line execution and not-taken
conditional jumps produce no edge, so the buffer holds exactly the
information a verifier needs to replay the control flow against a
statically recovered CFG (OAT-style trace attestation).

Wire/trace format (also noted in CHANGES.md):

* an **edge** is ``(src, dst, kind)`` -- the issuing PC, the resulting
  PC, and one of ``call | jump | ret | reti | irq``;
* the recorder chains a 64-bit FNV-1a digest over every edge it has
  ever seen (including edges later evicted from the ring); the chain
  value *before* the oldest retained edge travels with a snapshot as
  ``prefix_digest`` so a verifier can re-fold the retained window and
  compare against the MAC'd ``digest`` even when old edges were
  dropped;
* ``dropped`` counts evicted edges; ``total`` counts all edges ever.

The digest itself is not secret -- integrity comes from embedding it in
the MAC'd attestation report (:mod:`repro.fleet.protocol`): a tampered
or fabricated edge window no longer folds to the reported digest.
"""

from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.core import StepKind
from repro.isa.operands import AddrMode
from repro.isa.registers import PC, SP

# Edge kinds, with the codes folded into the digest chain.
EDGE_CALL = "call"
EDGE_JUMP = "jump"
EDGE_RET = "ret"
EDGE_RETI = "reti"
EDGE_IRQ = "irq"

EDGE_KIND_CODES = {
    EDGE_CALL: 1,
    EDGE_JUMP: 2,
    EDGE_RET: 3,
    EDGE_RETI: 4,
    EDGE_IRQ: 5,
}

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fold(h: int, value: int) -> int:
    h ^= value & _MASK64
    return (h * _FNV_PRIME) & _MASK64


def chain_edge(h: int, src: int, dst: int, kind: str) -> int:
    """Fold one edge into the rolling digest chain."""
    h = _fold(h, src)
    h = _fold(h, dst)
    return _fold(h, EDGE_KIND_CODES[kind])


def fold_edges(prefix: int, edges) -> int:
    """Re-fold an edge window over its prefix digest (verifier side)."""
    h = prefix
    for src, dst, kind in edges:
        h = chain_edge(h, src, dst, kind)
    return h


def classify_step(record) -> Optional[Tuple[int, int, str]]:
    """The control-flow edge taken by one step, or ``None``.

    Interrupt acceptance is always an edge.  An instruction step is an
    edge when it is a call, a ``reti``, or any instruction whose
    resulting PC differs from the fall-through PC (taken jumps, ``br``,
    ``ret`` -- which is ``mov @sp+, pc`` after emulation expansion).
    """
    if record.kind is StepKind.INTERRUPT:
        return (record.pc, record.next_pc, EDGE_IRQ)
    if record.kind is not StepKind.INSTRUCTION:
        return None
    insn = record.insn
    name = insn.opcode.mnemonic
    if name == "call":
        return (record.pc, record.next_pc, EDGE_CALL)
    if name == "reti":
        return (record.pc, record.next_pc, EDGE_RETI)
    if record.next_pc == (record.pc + insn.size_bytes) & 0xFFFF:
        return None  # straight-line or not-taken conditional
    if (
        name == "mov"
        and insn.dst is not None
        and insn.dst.mode is AddrMode.REGISTER
        and insn.dst.reg == PC
        and insn.src is not None
        and insn.src.mode is AddrMode.AUTOINC
        and insn.src.reg == SP
    ):
        return (record.pc, record.next_pc, EDGE_RET)
    return (record.pc, record.next_pc, EDGE_JUMP)


def empty_snapshot() -> "TraceSnapshot":
    """The snapshot of a device with trace recording disabled."""
    return TraceSnapshot(edges=(), prefix_digest=_FNV_OFFSET,
                         digest=_FNV_OFFSET, total=0, dropped=0, capacity=0)


@dataclass(frozen=True)
class TraceSnapshot:
    """One point-in-time view of a device's branch trace.

    ``edges`` is the retained window (oldest first); ``prefix_digest``
    is the chain value before the window's first edge; ``digest`` is
    the chain value after its last.  ``fold_edges(prefix_digest,
    edges) == digest`` iff the window is authentic.
    """

    edges: Tuple[Tuple[int, int, str], ...]
    prefix_digest: int
    digest: int
    total: int
    dropped: int
    capacity: int

    @property
    def digest_hex(self) -> str:
        return f"{self.digest:016x}"

    @property
    def windowed(self) -> bool:
        """True when edges were evicted (replay cannot assume boot state)."""
        return self.dropped > 0

    def consistent(self) -> bool:
        """Does the edge window re-fold to the claimed digest?"""
        try:
            return fold_edges(self.prefix_digest, self.edges) == self.digest
        except KeyError:  # unknown edge kind smuggled in
            return False


def capture_trace(device, steps, max_cycles=None,
                  stop_on_done=True) -> "TraceSnapshot":
    """Run *device* for up to *steps* steps and snapshot its trace.

    Uses the batched :meth:`repro.device.Device.run_steps` inner loop so
    long captures amortize per-step Python overhead instead of paying
    the observer-hook price of ``Device.run``.  The device must have
    been built with trace recording enabled (``trace_capacity != 0``).
    """
    if device.trace is None:
        raise ValueError("device was built with trace recording disabled")
    device.run_steps(steps, max_cycles=max_cycles, stop_on_done=stop_on_done)
    return device.trace.snapshot()


class BranchTraceRecorder:
    """Bounded ring of taken control-flow edges with a rolling digest.

    Installed as ``Cpu.trace_sink``; :meth:`observe` is on the per-step
    hot path, so the no-edge case returns after one size computation.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        # Ring entries: (src, dst, kind, chain_after).
        self._edges = deque(maxlen=capacity)
        self._digest = _FNV_OFFSET
        self._prefix = _FNV_OFFSET  # chain value before the oldest entry
        self.total = 0
        self.dropped = 0

    def observe(self, record):
        edge = classify_step(record)
        if edge is not None:
            self.record_edge(*edge)

    def record_edge(self, src: int, dst: int, kind: str):
        if len(self._edges) == self.capacity:
            # The leftmost entry is about to be evicted; its chain value
            # becomes the new prefix so snapshots stay verifiable.
            self._prefix = self._edges[0][3]
            self.dropped += 1
        self._digest = chain_edge(self._digest, src, dst, kind)
        self._edges.append((src, dst, kind, self._digest))
        self.total += 1

    def inject_edge(self, src: int, dst: int, kind: str):
        """Append an edge WITHOUT folding it into the digest chain.

        Models a compromised device (or in-path attacker) fabricating
        trace evidence; the snapshot stops re-folding to its digest and
        the verifier must flag it.  Test/fault-injection hook only.
        """
        self._edges.append((src, dst, kind, self._digest))
        self.total += 1

    def __len__(self):
        return len(self._edges)

    def snapshot(self) -> TraceSnapshot:
        return TraceSnapshot(
            edges=tuple((src, dst, kind) for src, dst, kind, _ in self._edges),
            prefix_digest=self._prefix,
            digest=self._digest,
            total=self.total,
            dropped=self.dropped,
            capacity=self.capacity,
        )

    # ---- snapshot/restore (see repro.snapshot) ---------------------------

    def snapshot_state(self):
        """Full recorder state, including the per-entry chain values
        (unlike :meth:`snapshot`, which is the attestation *evidence*
        view and drops them)."""
        return {
            "edges": [[src, dst, kind, chain]
                      for src, dst, kind, chain in self._edges],
            "digest": self._digest,
            "prefix": self._prefix,
            "total": self.total,
            "dropped": self.dropped,
            "capacity": self.capacity,
        }

    def restore_state(self, state):
        if state["capacity"] != self.capacity:
            raise ValueError(
                f"trace snapshot capacity {state['capacity']} does not match "
                f"recorder capacity {self.capacity}")
        self._edges = deque(
            ((src, dst, kind, chain)
             for src, dst, kind, chain in state["edges"]),
            maxlen=self.capacity)
        self._digest = state["digest"]
        self._prefix = state["prefix"]
        self.total = state["total"]
        self.dropped = state["dropped"]

    def clear(self):
        """Forget everything (fresh provisioning, not used on reset --
        a violation's trace is exactly the evidence worth keeping)."""
        self._edges.clear()
        self._digest = _FNV_OFFSET
        self._prefix = _FNV_OFFSET
        self.total = 0
        self.dropped = 0
