"""CFG recovery: linked binary -> basic blocks, functions, call graph.

The recovery is *independent of the toolchain's own view*: it takes the
loadable segments of a :class:`~repro.toolchain.linker.LinkedProgram`
(or any equivalent byte image), disassembles the executable extents
word-by-word through :func:`repro.isa.decode.decode_words`, classifies
every control transfer, and rebuilds

* per-function basic-block CFGs,
* an interprocedural call graph with per-site return addresses,
* the indirect-call target set, seeded from the EILID call-table
  registrations (``mov #f, r6`` + ``call #NS_EILID_store_ind``) when
  the binary is instrumented, falling back to statically discovered
  function entries (call targets + address-taken code symbols) when it
  is not.

Only the symbol table and interrupt vectors are trusted from the
binary's metadata -- the same information a real verifier reads from
the ELF of the firmware it provisioned.  Instruction boundaries,
transfer targets and block structure all come from the decoder, which
is what lets :mod:`repro.cfg.policy` cross-check the instrumenter's
listing-derived view against this one.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DecodingError, ReproError
from repro.isa.decode import decode_words
from repro.isa.opcodes import Format
from repro.isa.operands import AddrMode
from repro.isa.registers import PC, SP

EXECUTABLE_SECTIONS = (".text", ".secure_text")


class CfgError(ReproError):
    """CFG recovery / policy compilation failure."""


class TransferKind(enum.Enum):
    NONE = "none"  # falls through
    CALL = "call"  # direct call (static target known)
    CALL_INDIRECT = "call-indirect"
    JUMP = "jump"  # unconditional direct jump/branch
    COND_JUMP = "cond-jump"  # conditional: target or fall-through
    JUMP_INDIRECT = "jump-indirect"  # register/memory jump (policy rejects)
    RET = "ret"
    RETI = "reti"


# Transfer kinds that end a basic block.
_TERMINATORS = {
    TransferKind.JUMP,
    TransferKind.COND_JUMP,
    TransferKind.JUMP_INDIRECT,
    TransferKind.RET,
    TransferKind.RETI,
}


@dataclass(frozen=True)
class DecodedInsn:
    """One disassembled instruction plus its control-transfer summary."""

    addr: int
    insn: object  # repro.isa.instructions.Instruction
    size: int  # bytes
    kind: TransferKind
    target: Optional[int]  # static target for CALL/JUMP/COND_JUMP

    @property
    def next_addr(self):
        return (self.addr + self.size) & 0xFFFF

    def render(self):
        return f"0x{self.addr:04x}: {self.insn.render()}"


@dataclass
class BasicBlock:
    start: int
    end: int  # address of the last instruction in the block
    insns: List[DecodedInsn] = field(default_factory=list)
    successors: Tuple[int, ...] = ()

    @property
    def terminator(self) -> DecodedInsn:
        return self.insns[-1]

    def __str__(self):
        return (f"block 0x{self.start:04x}..0x{self.end:04x} "
                f"({len(self.insns)} insns) -> "
                + ", ".join(f"0x{s:04x}" for s in self.successors))


@dataclass
class FunctionCfg:
    name: str
    entry: int
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)

    @property
    def block_count(self):
        return len(self.blocks)

    @property
    def edge_count(self):
        return sum(len(b.successors) for b in self.blocks.values())


@dataclass(frozen=True)
class CallSite:
    addr: int  # address of the call instruction
    caller: str  # enclosing function name
    target: Optional[int]  # None for indirect calls
    return_addr: int  # the protected return address


@dataclass
class RecoveredCfg:
    """Everything the policy compiler and the CLI report on."""

    name: str
    entry: int
    insns: Dict[int, DecodedInsn]  # addr -> instruction (all exec sections)
    functions: Dict[str, FunctionCfg]  # name -> per-function CFG
    call_sites: List[CallSite]
    call_graph: Dict[str, Set[str]]  # caller -> direct callees
    indirect_targets: Tuple[int, ...]  # sorted, deduplicated
    indirect_targets_registered: bool  # True when seeded from EILID table
    function_entries: Dict[int, str]  # entry addr -> name
    vectors: Dict[int, int]  # vector index -> handler address
    reti_sites: Tuple[int, ...]
    code_ranges: Tuple[Tuple[int, int], ...]  # inclusive [start, end] spans
    undecodable: Tuple[int, ...]  # addresses skipped as non-instructions

    @property
    def return_sites(self) -> Set[int]:
        return {site.return_addr for site in self.call_sites}

    @property
    def block_count(self):
        return sum(f.block_count for f in self.functions.values())

    def function_at(self, addr) -> Optional[FunctionCfg]:
        for func in self.functions.values():
            if func.entry <= addr and any(
                b.start <= addr <= b.end for b in func.blocks.values()
            ):
                return func
        return None


# ---------------------------------------------------------------------------
# Instruction classification
# ---------------------------------------------------------------------------


def classify_insn(insn, addr) -> Tuple[TransferKind, Optional[int]]:
    """Classify one decoded instruction's control-transfer behaviour.

    Returns ``(kind, static_target)``; targets are word-aligned the way
    the CPU aligns PC writes.
    """
    fmt = insn.opcode.format
    name = insn.opcode.mnemonic
    if fmt is Format.JUMP:
        target = (addr + 2 + 2 * insn.offset) & 0xFFFF
        if name == "jmp":
            return TransferKind.JUMP, target
        return TransferKind.COND_JUMP, target
    if name == "call":
        dst = insn.dst
        if dst.mode in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
            return TransferKind.CALL, dst.value & 0xFFFE
        return TransferKind.CALL_INDIRECT, None
    if name == "reti":
        return TransferKind.RETI, None
    # Emulated transfers are all MOVs into PC after expansion.
    dst = insn.dst
    if (
        dst is not None
        and dst.mode is AddrMode.REGISTER
        and dst.reg == PC
        and fmt is Format.DOUBLE
    ):
        src = insn.src
        if name == "mov":
            if src.mode is AddrMode.AUTOINC and src.reg == SP:
                return TransferKind.RET, None  # ret == mov @sp+, pc
            if src.mode in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
                return TransferKind.JUMP, src.value & 0xFFFE  # br #imm
        # mov rN/@rN/x(rN), pc; add #x, pc; ... -- all indirect jumps.
        return TransferKind.JUMP_INDIRECT, None
    return TransferKind.NONE, None


# ---------------------------------------------------------------------------
# Disassembly
# ---------------------------------------------------------------------------


def _image_words(program) -> Dict[int, int]:
    """Word-addressable view of the loadable image."""
    by_byte: Dict[int, int] = {}
    for addr, data in program.segments():
        for offset, value in enumerate(data):
            by_byte[addr + offset] = value
    words: Dict[int, int] = {}
    for addr in list(by_byte):
        if addr % 2 == 0 and addr + 1 in by_byte:
            words[addr] = by_byte[addr] | (by_byte[addr + 1] << 8)
    return words


def _section_spans(program) -> List[Tuple[int, int]]:
    spans = []
    for extent in program.sections:
        if extent.name in EXECUTABLE_SECTIONS and extent.size > 0:
            spans.append((extent.base, extent.end))
    return spans


def disassemble(program) -> Tuple[Dict[int, DecodedInsn], List[int]]:
    """Linear-sweep disassembly of every executable section.

    Returns ``(insns_by_addr, undecodable_addresses)``.  Words that do
    not decode (inline data, padding) are skipped one word at a time;
    the sweep resynchronises at the next decodable word, which is exact
    for this toolchain because the linker never mixes data into
    ``.text``/``.secure_text``.
    """
    words = _image_words(program)
    insns: Dict[int, DecodedInsn] = {}
    undecodable: List[int] = []
    for start, end in _section_spans(program):
        addr = start
        while addr <= end:
            window = []
            probe = addr
            while probe <= end and probe in words and len(window) < 3:
                window.append(words[probe])
                probe += 2
            if not window:
                addr += 2
                continue
            try:
                insn, consumed = decode_words(window)
            except DecodingError:
                undecodable.append(addr)
                addr += 2
                continue
            kind, target = classify_insn(insn, addr)
            insns[addr] = DecodedInsn(addr, insn, consumed * 2, kind, target)
            addr += consumed * 2
    return insns, undecodable


# ---------------------------------------------------------------------------
# Function discovery and block building
# ---------------------------------------------------------------------------


def _code_symbols(program, spans) -> Dict[str, int]:
    def in_code(addr):
        return any(start <= addr <= end for start, end in spans)

    return {name: addr for name, addr in program.symbols.items() if in_code(addr)}


def _discover_entries(program, insns, spans) -> Dict[int, str]:
    """Function entry addresses, named from the symbol table.

    Roots: the reset entry, every interrupt handler, every direct call
    target, and every address-taken immediate that lands on a decoded
    instruction (function pointers stored to memory/registers).
    """
    symbols = _code_symbols(program, spans)
    by_addr: Dict[int, str] = {}
    for name, addr in sorted(symbols.items()):
        # First symbol name wins per address; aliases are harmless.
        by_addr.setdefault(addr, name)

    entries: Set[int] = {program.entry}
    entries.update(handler for handler in program.vectors.values())
    # Each executable section's first instruction anchors a function, so
    # regions only reachable through jumps (the secure ROM, entered via
    # the shims' ``br #S_EILID_entry``) still partition into functions.
    entries.update(start for start, _end in spans)
    for decoded in insns.values():
        if decoded.kind is TransferKind.CALL and decoded.target is not None:
            entries.add(decoded.target)
        elif decoded.kind is TransferKind.NONE:
            insn = decoded.insn
            for operand in (insn.src, insn.dst):
                if operand is None or operand.value is None:
                    continue
                if operand.mode is not AddrMode.IMMEDIATE:
                    continue
                if operand.value in insns:
                    entries.add(operand.value)  # address-taken code pointer

    return {addr: by_addr.get(addr, f"sub_{addr:04x}")
            for addr in sorted(entries) if addr in insns}


def _build_blocks(entries, insns, spans) -> Dict[str, FunctionCfg]:
    """Partition the sweep into functions, then split into basic blocks."""
    entry_addrs = sorted(entries)
    functions: Dict[str, FunctionCfg] = {}

    # Block leaders: function entries, transfer targets, post-transfer.
    leaders: Set[int] = set(entry_addrs)
    for decoded in insns.values():
        if decoded.kind in _TERMINATORS or decoded.kind in (
            TransferKind.CALL, TransferKind.CALL_INDIRECT,
        ):
            if decoded.kind in _TERMINATORS:
                leaders.add(decoded.next_addr)
            if decoded.target is not None and decoded.target in insns:
                leaders.add(decoded.target)

    for index, entry in enumerate(entry_addrs):
        span_end = None
        for start, end in spans:
            if start <= entry <= end:
                span_end = end
        limit = entry_addrs[index + 1] - 1 if index + 1 < len(entry_addrs) else span_end
        limit = min(limit, span_end) if span_end is not None else limit
        func = FunctionCfg(entries[entry], entry)
        block: Optional[BasicBlock] = None
        addr = entry
        while addr is not None and addr <= limit and addr in insns:
            decoded = insns[addr]
            if block is None or (addr in leaders and addr != block.start):
                if block is not None and addr in leaders:
                    block.successors = (addr,)  # fall into the new leader
                block = BasicBlock(addr, addr)
                func.blocks[addr] = block
            block.insns.append(decoded)
            block.end = addr
            if decoded.kind in _TERMINATORS:
                block.successors = _successors(decoded)
                block = None
            addr = decoded.next_addr
        functions[entries[entry]] = func
    return functions


def _successors(decoded: DecodedInsn) -> Tuple[int, ...]:
    if decoded.kind is TransferKind.JUMP:
        return (decoded.target,)
    if decoded.kind is TransferKind.COND_JUMP:
        return (decoded.target, decoded.next_addr)
    return ()  # ret/reti/indirect jump: no static intra-function successor


# ---------------------------------------------------------------------------
# Indirect-target seeding
# ---------------------------------------------------------------------------


def _scan_table_registrations(insns, store_ind_addr) -> List[int]:
    """EILID call-table registrations, in program order.

    The instrumenter emits ``mov #f, r6`` immediately followed by
    ``call #NS_EILID_store_ind`` for every registered function; the
    pair is unmistakable in the disassembly.
    """
    targets: List[int] = []
    ordered = sorted(insns)
    for position, addr in enumerate(ordered[:-1]):
        decoded = insns[addr]
        insn = decoded.insn
        if insn.opcode.mnemonic != "mov" or insn.src is None or insn.dst is None:
            continue
        if insn.src.mode not in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
            continue
        if insn.dst.mode is not AddrMode.REGISTER or insn.dst.reg != 6:
            continue
        follower = insns.get(decoded.next_addr)
        if (
            follower is not None
            and follower.kind is TransferKind.CALL
            and follower.target == store_ind_addr
        ):
            targets.append(insn.src.value)
    return targets


# ---------------------------------------------------------------------------
# Top-level recovery
# ---------------------------------------------------------------------------


def recover_cfg(program, name: Optional[str] = None) -> RecoveredCfg:
    """Recover the full CFG of a linked program."""
    spans = _section_spans(program)
    if not spans:
        raise CfgError("program has no executable sections to disassemble")
    insns, undecodable = disassemble(program)
    if program.entry not in insns:
        raise CfgError(f"entry point 0x{program.entry:04x} did not disassemble")

    entries = _discover_entries(program, insns, spans)
    functions = _build_blocks(entries, insns, spans)

    # Call sites and the call graph.
    name_of: Dict[int, str] = dict(entries)
    call_sites: List[CallSite] = []
    call_graph: Dict[str, Set[str]] = {fname: set() for fname in functions}
    current = None
    for addr in sorted(insns):
        if addr in name_of:
            current = name_of[addr]
        decoded = insns[addr]
        if decoded.kind in (TransferKind.CALL, TransferKind.CALL_INDIRECT):
            caller = current or "<unknown>"
            call_sites.append(
                CallSite(addr, caller, decoded.target, decoded.next_addr)
            )
            if decoded.target is not None and decoded.target in name_of:
                call_graph.setdefault(caller, set()).add(name_of[decoded.target])

    # Indirect-call targets: EILID registrations when present, else the
    # statically discovered entry set (classic binary-CFI fallback).
    store_ind = program.symbols.get("NS_EILID_store_ind")
    registered = _scan_table_registrations(insns, store_ind) if store_ind else []
    if registered:
        indirect = tuple(sorted(set(registered)))
        from_table = True
    else:
        indirect = tuple(sorted(entries))
        from_table = False

    reti_sites = tuple(sorted(
        addr for addr, d in insns.items() if d.kind is TransferKind.RETI
    ))

    return RecoveredCfg(
        name=name or program.name,
        entry=program.entry,
        insns=insns,
        functions=functions,
        call_sites=call_sites,
        call_graph=call_graph,
        indirect_targets=indirect,
        indirect_targets_registered=from_table,
        function_entries={addr: fname for addr, fname in entries.items()},
        vectors=dict(program.vectors),
        reti_sites=reti_sites,
        code_ranges=tuple(spans),
        undecodable=tuple(undecodable),
    )
