"""Exception hierarchy for the EILID reproduction.

Toolchain problems (bad assembly, unresolvable symbols, out-of-range
jumps) raise exceptions; *security* events (CFI violations, W+X faults)
never do -- they are modelled as hardware resets recorded on the device,
because that is how the real EILID hardware reacts.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IsaError(ReproError):
    """Raised for malformed instruction encodings or operand combinations."""


class EncodingError(IsaError):
    """Raised when an instruction cannot be encoded (bad operand/mode)."""


class DecodingError(IsaError):
    """Raised when a word sequence is not a valid instruction."""


class AsmError(ReproError):
    """Base class for assembler front-end errors."""

    def __init__(self, message, filename=None, line=None):
        self.filename = filename
        self.line = line
        where = ""
        if filename is not None:
            where = f"{filename}:"
        if line is not None:
            where += f"{line}: "
        elif filename is not None:
            where += " "
        super().__init__(where + message)


class AsmSyntaxError(AsmError):
    """Raised on unparseable assembly source."""


class SymbolError(AsmError):
    """Raised for duplicate or undefined symbols."""


class RangeError(AsmError):
    """Raised when a value does not fit its encoding field (e.g. jump offset)."""


class LinkError(ReproError):
    """Raised when the linker cannot lay out or resolve an image."""


class InstrumentationError(ReproError):
    """Raised when EILIDinst cannot safely instrument the input."""


class ConvergenceError(InstrumentationError):
    """Raised when the iterated build of Fig. 2 fails to reach a fixed point."""


class MemoryAccessError(ReproError):
    """Raised on accesses outside the modelled address space.

    This models a bus error, which on the simulated device is fatal to
    the *simulation* (it indicates a harness bug), unlike monitor
    violations which reset the device.
    """


class UpdateError(ReproError):
    """Raised when a CASU secure-update package is malformed (not merely
    unauthenticated -- failed authentication is a rejected update, not an
    exception)."""


class VerificationError(ReproError):
    """Raised by the model checker for malformed models or specs."""
