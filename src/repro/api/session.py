"""The scenario pipeline: ``ScenarioSpec`` in, typed outcomes out.

:class:`Session` is the one public execution object.  It walks the
EILID pipeline (build -> run -> attest -> verify) lazily: each stage
runs at most once, later stages trigger the earlier ones they need,
and every stage returns a typed result dataclass from
:mod:`repro.api.results` that serialises via ``to_dict()``.

``run_scenario(spec)`` is the one-shot convenience wrapper that walks
all four stages and folds them into a :class:`ScenarioResult`.

Fleet-scale scenarios stream: ``attest_stream()`` and
``verify_stream()`` yield per-device records lazily (one verifier
exchange / trace replay at a time), and the aggregate ``attest()`` /
``verify()`` outcomes fold counts while draining those generators --
no per-device list is ever materialised.
"""

from typing import Iterator, Optional

from repro.api.firmware import FirmwareBuild, build_firmware, default_peripherals
from repro.api.results import (
    SAMPLE_LIMIT,
    AttackDetails,
    AttestOutcome,
    BuildArtifacts,
    DeviceAttestation,
    DeviceVerification,
    FleetRunDetails,
    RolloutDetails,
    RunOutcome,
    ScenarioResult,
    VerifyOutcome,
    report_to_dict,
)
from repro.api.spec import FirmwareSpec, ScenarioSpec, SpecError, as_spec
from repro.obs.metrics import METRICS


# ---- declarative peripheral stimulus ---------------------------------------


def _cycling(values):
    values = [int(v) for v in values]
    return lambda index: values[index % len(values)]


def build_peripherals(configs: dict) -> dict:
    """Instantiate peripherals from their JSON-safe spec configs."""
    from repro.peripherals import (
        Adc,
        AdcSchedule,
        Gpio,
        HarnessPorts,
        Lcd,
        Timer,
        Uart,
        Ultrasonic,
    )

    built = {}
    for name, config in configs.items():
        if name == "gpio":
            inputs = config.get("inputs")
            built[name] = Gpio(input_schedule=_cycling(inputs) if inputs else None)
        elif name == "timer":
            built[name] = Timer()
        elif name == "adc":
            hold = int(config.get("hold", 1))
            channels = {
                int(channel): AdcSchedule.steps(hold, [int(v) for v in values])
                for channel, values in (config.get("channels") or {}).items()
            }
            built[name] = Adc(AdcSchedule(channels))
        elif name == "uart":
            rx = [(int(cycle), int(byte)) for cycle, byte in config.get("rx", ())]
            built[name] = Uart(rx_schedule=rx,
                               rx_irq_enabled=bool(config.get("rx_irq", False)))
        elif name == "lcd":
            built[name] = Lcd()
        elif name == "ultrasonic":
            widths = config.get("echo_widths")
            built[name] = Ultrasonic(_cycling(widths) if widths else None)
        elif name == "harness":
            built[name] = HarnessPorts()
        else:
            raise SpecError("peripherals", f"malformed peripheral name {name!r}")
    return built


# ---- the session ------------------------------------------------------------


class Session:
    """One scenario's lifecycle.  Construct from a spec, dict, or JSON."""

    def __init__(self, spec):
        self.spec: ScenarioSpec = as_spec(spec).validate()
        self._firmware_build: Optional[FirmwareBuild] = None
        self._artifacts: Optional[BuildArtifacts] = None
        self._device = None
        self._fleet = None
        self._attack_result = None
        self._run_outcome: Optional[RunOutcome] = None
        self._attest_outcome: Optional[AttestOutcome] = None
        self._verify_outcome: Optional[VerifyOutcome] = None
        self.campaign_report = None  # the raw CampaignReport, post-rollout
        self.fault_report = None  # the raw FaultReport, post-fault_sweep
        self.analysis_report = None  # the raw AnalysisReport, post-analyze
        self.run_result = None  # the raw device RunResult (run workloads)
        self._policy_cache = None
        self._fleet_enrolled = 0  # handshake successes at enroll time

    @property
    def workload(self) -> str:
        return self.spec.workload

    # ---- internal plumbing -------------------------------------------------

    def _firmware_spec(self) -> Optional[FirmwareSpec]:
        spec = self.spec
        if spec.workload == "attack":
            from repro.attacks import attack_firmware_spec

            return attack_firmware_spec(spec.attack, spec.security)
        if spec.workload == "fleet":
            if spec.firmware == FirmwareSpec():
                from repro.fleet.simulation import fleet_firmware_spec

                return fleet_firmware_spec()
            return spec.firmware
        return spec.firmware

    def _ensure_firmware(self) -> FirmwareBuild:
        if self._firmware_build is None:
            self._firmware_build = build_firmware(self._firmware_spec())
        return self._firmware_build

    def _make_device(self):
        spec = self.spec
        build = self._ensure_firmware()
        peripherals = default_peripherals(spec.firmware) or {}
        peripherals.update(build_peripherals(spec.peripherals))
        from repro.device import build_device

        return build_device(build.program, security=spec.security,
                            peripherals=peripherals or None,
                            **spec.limits.device_kwargs())

    @property
    def device(self):
        """The single simulated device (run and attack workloads)."""
        if self.workload == "fleet":
            raise SpecError("fleet", "a fleet scenario has no single device; "
                            "use Session.fleet")
        if self._device is None:
            if self.workload == "attack":
                self.run()  # the attack harness owns device construction
            else:
                self._device = self._make_device()
        return self._device

    @property
    def attack_result(self):
        """The raw AttackResult (attack workloads; runs on first access)."""
        if self.workload != "attack":
            raise SpecError("attack", "not an attack scenario")
        if self._attack_result is None:
            self.run()
        return self._attack_result

    @property
    def fleet(self):
        """The FleetSimulation (fleet workloads); enrolls on first access."""
        spec = self.spec
        if spec.workload != "fleet":
            raise SpecError("fleet", "not a fleet scenario")
        if self._fleet is None:
            from repro.fleet.simulation import FleetSimulation

            firmware = None
            if spec.firmware != FirmwareSpec():
                firmware = spec.firmware
            self._fleet = FleetSimulation(
                size=spec.fleet.size,
                security=spec.security,
                loss=spec.fleet.loss,
                reorder=spec.fleet.reorder,
                seed=spec.fleet.seed,
                max_attempts=spec.fleet.max_attempts,
                verify_traces=spec.fleet.verify_traces,
                firmware=firmware,
                store=spec.fleet.store,
                events=spec.fleet.events,
                alerts=spec.fleet.alerts,
            )
            # Enrollment happens in the constructor (or records are
            # restored from the durable store); enrolled_ok is the
            # handshake signal that survives an applied rollout
            # clearing the golden hash pending re-attestation.
            self._fleet_enrolled = sum(
                1 for record in self._fleet.registry
                if record.enrolled_ok)
        return self._fleet

    # ---- build -------------------------------------------------------------

    def build(self) -> BuildArtifacts:
        """Compile / instrument / link the scenario's firmware."""
        if self._artifacts is None:
            spec = self.spec
            fw_spec = self._firmware_spec()
            with METRICS.span("session.build"):
                build = self._ensure_firmware()
            self._artifacts = BuildArtifacts(
                scenario=spec.name,
                workload=spec.workload,
                firmware_kind=fw_spec.kind,
                variant=fw_spec.variant,
                program_name=build.program.name,
                app_code_bytes=build.app_code_bytes,
                build_count=build.build_count,
                instrumented_calls=build.instrumented_calls,
                instrumented_returns=build.instrumented_returns,
                inserted_bytes=build.inserted_bytes,
                build_ms=build.total_ms,
            )
        return self._artifacts

    # ---- run ---------------------------------------------------------------

    def run(self) -> RunOutcome:
        """Execute the scenario (enroll + run + rollout for fleets)."""
        if self._run_outcome is None:
            runner = {"run": self._run_single,
                      "attack": self._run_attack,
                      "fleet": self._run_fleet}[self.workload]
            with METRICS.span("session.run"):
                self._run_outcome = runner()
        return self._run_outcome

    def _run_single(self) -> RunOutcome:
        spec = self.spec
        device = self.device
        result = device.run(max_cycles=spec.limits.max_cycles,
                            max_steps=spec.limits.max_steps)
        self.run_result = result
        return RunOutcome(
            scenario=spec.name,
            workload="run",
            security=spec.security,
            cycles=result.cycles,
            instructions=result.instructions,
            steps=result.steps,
            done=result.done,
            done_value=result.done_value,
            violations=tuple(v.reason.value for v in result.violations),
            reset_count=result.reset_count,
        )

    def _run_attack(self) -> RunOutcome:
        spec = self.spec
        from repro.attacks import ATTACKS

        result = ATTACKS[spec.attack](spec.security)
        self._attack_result = result
        self._device = result.device
        device = result.device
        return RunOutcome(
            scenario=spec.name,
            workload="attack",
            security=spec.security,
            cycles=device.cycle,
            instructions=device.cpu.instruction_count,
            steps=device.cpu.instruction_count,
            done=device.harness.done,
            done_value=device.harness.done_value,
            violations=tuple(v.reason.value for v in result.violations),
            reset_count=device.reset_count,
            attack=AttackDetails(
                name=result.name,
                outcome=result.outcome.value,
                detail=result.detail,
                detected=result.defended,
            ),
        )

    def rollout(self, plan) -> RolloutDetails:
        """Run one staged campaign on this session's fleet.

        *plan* is a :class:`~repro.api.spec.RolloutSpec`.  Fleet
        scenarios may roll out repeatedly (the verifier keeps managing
        the same population); each call updates ``campaign_report``.
        """
        if self.workload != "fleet":
            raise SpecError("fleet.rollout", "not a fleet scenario")
        plan.validate()
        from repro.fleet import CampaignConfig

        config = CampaignConfig(
            wave_fractions=plan.wave_fractions,
            failure_threshold=plan.failure_threshold,
            max_attempts=self.spec.fleet.max_attempts,
            workers=plan.workers,
            batch_size=plan.batch_size,
            verify_after_wave=plan.verify_after_wave,
            backend=plan.backend,
            metrics_dump=plan.metrics_dump,
        )
        with METRICS.span("session.rollout"):
            report = self.fleet.rollout(
                version=plan.version,
                config=config,
                tamper_fraction=plan.tamper_fraction,
                rollback_fraction=plan.rollback_fraction,
                resume=plan.resume,
            )
        self.campaign_report = report
        details = RolloutDetails(
            status=report.status.value,
            target_version=report.target_version,
            applied=report.applied,
            failed=report.failed,
            skipped=report.skipped,
            halted=report.halted,
            halt_reason=report.halt_reason,
            waves=tuple(
                {"index": wave.index, "size": wave.size,
                 "applied": wave.applied, "failed": wave.failed,
                 "failure_fraction": round(wave.failure_fraction, 4)}
                for wave in report.waves),
            devices_per_sec=report.devices_per_sec,
            backend=report.backend,
            resumed=report.resumed,
            metrics=self._campaign_metrics(),
            alerts=(None if self.fleet.alerts is None
                    else tuple(dict(alert)
                               for alert in self.fleet.alerts.fired)),
        )
        # A campaign changes the evidence (firmware hashes, lifecycle
        # states, device cycles): every cached aggregate would go
        # stale, so refresh the run outcome in place and let the next
        # attest()/verify() recompute like the streams do.
        self._attest_outcome = None
        self._verify_outcome = None
        if self._run_outcome is not None:
            self._run_outcome = self._fleet_run_outcome(details)
        return details

    def fault_sweep(self, plan=None, events=None, policy=None):
        """Run a seeded fault-injection sweep over this session's firmware.

        *plan* is a :class:`~repro.api.spec.FaultSpec` (defaults apply
        when omitted): sites are enumerated from the recovered CFG,
        expanded deterministically from the seed, and run against every
        requested defense profile (see :mod:`repro.faults`).  Returns
        the :class:`~repro.faults.FaultReport`; *events* (an obs
        :class:`~repro.obs.events.EventLog`) makes the sweep watchable
        with ``fleet watch``.  *policy* (a
        :class:`~repro.cfg.policy.CfiPolicy`, e.g. one tightened by
        :func:`repro.analyze.apply_cfi_patch`) additionally grades
        escapes by replaying their branch traces against it.
        """
        from repro.api.spec import FaultSpec
        from repro.cfg import recover_cfg
        from repro.faults import FaultCampaign, enumerate_sites, expand_plan

        plan = plan if plan is not None else FaultSpec()
        plan.validate()
        firmware = self._firmware_spec()
        if firmware is None:
            raise SpecError("faults", "this scenario has no firmware to sweep")
        build = self._ensure_firmware()
        name = firmware.app or firmware.name
        cfg = recover_cfg(build.program, name=name)
        sites = enumerate_sites(cfg, kinds=plan.kinds)
        fault_plan = expand_plan(sites, seed=plan.seed, count=plan.count,
                                 name=name)
        campaign = FaultCampaign(
            firmware, fault_plan, profiles=plan.profiles,
            backend=plan.backend, workers=plan.workers,
            max_cycles=plan.max_cycles, warmup_steps=plan.warmup_steps,
            events=events, policy=policy)
        with METRICS.span("session.fault_sweep"):
            report = campaign.run()
        self.fault_report = report
        return report

    def analyze(self, spec=None, events=None, fault_report=None):
        """Run the static analyzer over this session's firmware image.

        *spec* is an :class:`~repro.api.spec.AnalyzeSpec` (defaults
        apply when omitted).  *fault_report* (or, when omitted, the
        session's stored report from a prior :meth:`fault_sweep`)
        switches on sweep correlation: escape/silent clusters are
        matched against the findings and CFI-policy tightenings are
        proposed.  *events* (an obs EventLog) records each finding as
        an ``analysis-finding`` event, so fleets can gate enrollment on
        a clean report.  Returns an
        :class:`~repro.api.results.AnalyzeOutcome`.
        """
        from repro.analyze import analyze_cfg, correlate_sweep
        from repro.api.results import AnalyzeOutcome
        from repro.api.spec import AnalyzeSpec
        from repro.cfg import recover_cfg

        spec = spec if spec is not None else AnalyzeSpec()
        spec.validate()
        firmware = self._firmware_spec()
        if firmware is None:
            raise SpecError("analyze",
                            "this scenario has no firmware to analyze")
        build = self._ensure_firmware()
        name = firmware.app or firmware.name
        with METRICS.span("session.analyze"):
            cfg = recover_cfg(build.program, name=name)
            report = analyze_cfg(
                cfg, build.program, variant=firmware.variant,
                rules=spec.rules, stack_margin=spec.stack_margin,
                irq_nesting=spec.irq_nesting)
            fault_report = (fault_report if fault_report is not None
                            else self.fault_report)
            correlation = None
            if fault_report is not None:
                correlation = correlate_sweep(fault_report, cfg,
                                              report.findings)
        if events is not None:
            for finding in report.findings:
                events.emit(
                    "analysis-finding", scenario=self.spec.name,
                    firmware=name, variant=firmware.variant,
                    rule=finding.rule, severity=finding.severity,
                    pc=finding.pc, function=finding.function,
                    message=finding.message)
            events.flush()
        self.analysis_report = report
        doc = report.to_dict()
        return AnalyzeOutcome(
            scenario=self.spec.name,
            workload=self.spec.workload,
            name=report.name,
            variant=report.variant,
            ok=report.ok,
            rules=tuple(doc["rules"]),
            counts=doc["counts"],
            findings=tuple(doc["findings"]),
            stats=doc["stats"],
            correlation=correlation,
        )

    @staticmethod
    def _campaign_metrics() -> Optional[dict]:
        """Campaign span timings for a RolloutDetails (None if disabled)."""
        if not METRICS.enabled:
            return None
        snapshot = METRICS.snapshot()["histograms"]
        return {name: data for name, data in snapshot.items()
                if name.startswith("campaign.")}

    def metrics(self) -> dict:
        """Snapshot of the process metrics registry (counters, gauges,
        span histograms).  Cumulative across the process, not scoped to
        this session -- the registry is deliberately global so the
        fleet layers, the interpreter batches and the session phases
        all land in one place."""
        return METRICS.snapshot()

    def _fleet_run_outcome(self, rollout) -> RunOutcome:
        """Aggregate the fleet's current device state into a RunOutcome."""
        spec = self.spec
        devices = self.fleet.devices.values()
        return RunOutcome(
            scenario=spec.name,
            workload="fleet",
            security=spec.security,
            cycles=sum(d.cycle for d in devices),
            instructions=sum(d.cpu.instruction_count for d in devices),
            steps=sum(d.cpu.instruction_count for d in devices),
            done=self._fleet_enrolled == spec.fleet.size,
            done_value=None,
            violations=tuple(sorted(
                {reason for d in devices for reason in d.violation_totals})),
            reset_count=sum(d.reset_count for d in devices),
            fleet=FleetRunDetails(
                size=spec.fleet.size,
                enrolled=self._fleet_enrolled,
                run_cycles=spec.fleet.run_cycles,
                rollout=rollout,
            ),
        )

    def _run_fleet(self) -> RunOutcome:
        spec = self.spec
        fleet = self.fleet
        if spec.fleet.run_cycles:
            fleet.run_all(max_cycles=spec.fleet.run_cycles)
        rollout = None
        if spec.fleet.rollout is not None:
            rollout = self.rollout(spec.fleet.rollout)
        return self._fleet_run_outcome(rollout)

    # ---- attest ------------------------------------------------------------

    def attest_stream(self) -> Iterator[DeviceAttestation]:
        """Yield per-device attestation records lazily (fleet-scale)."""
        self.run()
        if self.workload == "fleet":
            fleet = self.fleet
            registry = fleet.registry
            try:
                for device_id in registry.ids():
                    result = fleet.session(device_id).attest()
                    # Each attest consumed a challenge nonce (and may
                    # have quarantined); persist so a restart cannot
                    # reissue it -- that is the replay defence.
                    registry.save(registry.get(device_id))
                    report = result.report
                    yield DeviceAttestation(
                        device_id=device_id,
                        ok=result.ok,
                        detail=result.detail,
                        attempts=result.attempts,
                        firmware_hash=None if report is None
                        else report.firmware_hash,
                        firmware_version=None if report is None
                        else report.firmware_version,
                    )
            finally:
                # Commit even when the consumer abandons the stream.
                registry.flush()
        else:
            report = self.device.attestation_report()
            yield DeviceAttestation(
                device_id=self.spec.name,
                ok=True,
                detail="local attestation snapshot",
                attempts=1,
                firmware_hash=report.firmware_hash,
                firmware_version=report.firmware_version,
            )

    def attest(self) -> AttestOutcome:
        """Collect attestation evidence; folds the per-device stream."""
        if self._attest_outcome is None:
            spec = self.spec
            with METRICS.span("session.attest"):
                if self.workload == "fleet":
                    total = ok = 0
                    quarantined = []
                    for record in self.attest_stream():
                        total += 1
                        if record.ok:
                            ok += 1
                        elif len(quarantined) < SAMPLE_LIMIT:
                            quarantined.append(record.device_id)
                    report = None
                else:
                    self.run()
                    total = ok = 1
                    quarantined = []
                    report = report_to_dict(self.device.attestation_report())
            self._attest_outcome = AttestOutcome(
                scenario=spec.name,
                workload=spec.workload,
                ok=ok == total,
                devices_total=total,
                devices_ok=ok,
                report=report,
                quarantined=tuple(quarantined),
            )
        return self._attest_outcome

    # ---- verify ------------------------------------------------------------

    def _policy(self):
        if self.workload == "fleet":
            return self.fleet.policy  # cached on the simulation
        if self._policy_cache is None:
            from repro.cfg import policy_for_program

            # CFG recovery + policy compilation is the expensive half
            # of verification; one session verifies one image.
            self._policy_cache = policy_for_program(self.device.program)
        return self._policy_cache

    def verify_stream(self) -> Iterator[DeviceVerification]:
        """Yield per-device trace-replay verdicts lazily (fleet-scale)."""
        self.run()
        from repro.cfg import replay_trace

        policy = self._policy()
        if self.workload == "fleet":
            devices = self.fleet.devices.items()
        else:
            devices = ((self.spec.name, self.device),)
        for device_id, device in devices:
            snapshot = device.trace_snapshot()
            verdict = replay_trace(policy, snapshot)
            yield DeviceVerification(
                device_id=device_id,
                ok=verdict.ok,
                reason=verdict.reason,
                edges_checked=verdict.edges_checked,
                dropped=snapshot.dropped,
            )

    def verify(self) -> VerifyOutcome:
        """Replay recorded branch traces against the recovered policy."""
        if self._verify_outcome is None:
            spec = self.spec
            self.run()
            with METRICS.span("session.verify"):
                policy = self._policy()
                total = ok = edges = dropped = 0
                reason = ""
                rejected = []
                for record in self.verify_stream():
                    total += 1
                    edges += record.edges_checked
                    dropped += record.dropped
                    if record.ok:
                        ok += 1
                    else:
                        if not reason:
                            reason = record.reason
                        if len(rejected) < SAMPLE_LIMIT:
                            rejected.append(record.device_id)
            self._verify_outcome = VerifyOutcome(
                scenario=spec.name,
                workload=spec.workload,
                ok=ok == total,
                policy_digest=policy.digest,
                edges_checked=edges,
                dropped=dropped,
                reason=reason,
                devices_total=total,
                devices_ok=ok,
                rejected=tuple(rejected),
            )
        return self._verify_outcome

    # ---- the whole pipeline ------------------------------------------------

    def result(self) -> ScenarioResult:
        return ScenarioResult(
            spec=self.spec.to_dict(),
            build=self.build(),
            run=self.run(),
            attest=self.attest(),
            verify=self.verify(),
        )


def run_scenario(spec) -> ScenarioResult:
    """One-shot convenience: build, run, attest and verify *spec*.

    Accepts a :class:`ScenarioSpec`, a plain dict, or a JSON string.
    """
    return Session(spec).result()
