"""The one firmware build path behind every scenario.

``build_firmware`` turns a :class:`~repro.api.spec.FirmwareSpec` into
linked artifacts, whatever the source kind: a registered Table IV app,
mini-C text, or raw assembly.  The attack victims
(:mod:`repro.attacks.victims`) and the fleet image
(:mod:`repro.fleet.simulation`) route through the same function, so
build caching is shared process-wide: identical firmware is compiled,
instrumented and linked exactly once no matter which subsystem asks.
"""

import functools
from dataclasses import dataclass
from typing import Optional

from repro.api.spec import FirmwareSpec, SpecError
from repro.toolchain.build import BuildResult, SourceModule


@dataclass(frozen=True)
class FirmwareBuild:
    """A linked image plus the build metadata scenarios report."""

    result: BuildResult
    build_count: int
    instrumented_calls: int
    instrumented_returns: int
    inserted_bytes: int
    total_ms: float

    @property
    def program(self):
        return self.result.program

    @property
    def listing(self):
        return self.result.listing

    @property
    def app_code_bytes(self):
        return self.result.app_code_bytes


@functools.lru_cache(maxsize=1)
def _builder():
    """One shared IterativeBuild: its parse cache serves every scenario."""
    from repro.eilid.iterbuild import IterativeBuild

    return IterativeBuild()


def _resolve_source(spec: FirmwareSpec):
    """(assembly text, unit name) for any firmware kind."""
    from repro.minicc import compile_c

    if spec.kind == "app":
        from repro.apps.registry import APPS

        app = APPS.get(spec.app)
        if app is None:
            raise SpecError("firmware.app", f"unknown application {spec.app!r}")
        return compile_c(app.c_source, app.name), f"{app.name}.s"
    if spec.kind == "minicc":
        return compile_c(spec.source, spec.name), f"{spec.name}.s"
    if spec.kind == "asm":
        return spec.source, f"{spec.name}.s"
    raise SpecError("firmware.kind", f"unknown firmware kind {spec.kind!r}")


def _build_raw(builder, asm, unit_name, name, link_rom) -> BuildResult:
    """Raw-assembly original build: plain crt0 (+ optional trusted ROM)."""
    modules = [
        SourceModule("crt0.s", builder.trusted.crt0_source(eilid_enabled=False)),
        SourceModule(unit_name, asm, is_app=True),
    ]
    if link_rom:
        modules.append(SourceModule("eilid_rom.s", builder.trusted.rom_source()))
    return builder.pipeline.build(modules, name=name)


@functools.lru_cache(maxsize=64)
def build_firmware(spec: FirmwareSpec) -> FirmwareBuild:
    """Build one firmware image; cached per process by spec identity.

    The artifacts are immutable (devices copy the image into their own
    bus), so sharing them across scenarios, attacks and fleets is safe.
    The cache is bounded: the repo's own images (apps, victims, fleet
    node) fit with headroom, while a long-lived service sweeping many
    generated sources evicts least-recently-used builds instead of
    growing forever (``build_firmware.cache_clear()`` drops them all).
    """
    builder = _builder()
    asm, unit_name = _resolve_source(spec)
    if spec.variant == "eilid":
        result = builder.build_eilid(asm, unit_name)
        report = result.report
        return FirmwareBuild(
            result=result.final,
            build_count=result.build_count,
            instrumented_calls=report.direct_calls,
            instrumented_returns=report.returns,
            inserted_bytes=report.inserted_bytes,
            total_ms=result.total_ms,
        )
    if spec.kind == "asm":
        result = _build_raw(builder, asm, unit_name, spec.name, spec.link_rom)
    else:
        result = builder.build_original(asm, unit_name)
    return FirmwareBuild(
        result=result,
        build_count=1,
        instrumented_calls=0,
        instrumented_returns=0,
        inserted_bytes=0,
        total_ms=result.total_ms,
    )


def device_for(spec: FirmwareSpec, security: str, peripherals=None,
               update_key=None, **limits):
    """Build the firmware and assemble one Device around it.

    The spec path every subsystem shares: scenarios
    (:class:`repro.api.session.Session`), attack victims, and fleet
    enrollment all instantiate devices through here.
    """
    from repro.device import build_device

    build = build_firmware(spec)
    return build_device(build.program, security=security,
                        peripherals=peripherals, update_key=update_key,
                        **limits)


def default_peripherals(spec: FirmwareSpec) -> Optional[dict]:
    """A registered app's stimulus peripherals (None otherwise)."""
    if spec.kind != "app":
        return None
    from repro.apps.registry import APPS

    app = APPS.get(spec.app)
    return app.make_peripherals() if app is not None else None
