"""The public scenario API: declarative specs in, typed outcomes out.

This package is the one supported entry point for driving the EILID
reproduction.  Everything the repo can do -- build and run a Table IV
application, compile and execute mini-C or raw assembly, launch an
attack scenario, or manage a many-device fleet with staged rollouts and
trace attestation -- is described by one declarative, JSON-round-trip
:class:`ScenarioSpec` and executed by one :class:`Session` pipeline::

    from repro.api import ScenarioSpec, FirmwareSpec, run_scenario

    spec = ScenarioSpec(
        name="hello",
        firmware=FirmwareSpec(kind="app", app="light_sensor",
                              variant="eilid"),
        security="eilid",
    )
    result = run_scenario(spec)      # build -> run -> attest -> verify
    print(result.run.cycles, result.ok)
    print(result.to_dict())          # fully JSON-serialisable

Stages can also be driven individually (``Session(spec).build()`` /
``.run()`` / ``.attest()`` / ``.verify()``); every stage returns a
typed dataclass carrying ``to_dict()``, and fleet-scale stages stream
per-device records via ``attest_stream()`` / ``verify_stream()``.

The older construction helpers (``repro.device.build_device``, direct
``Device(...)``, ``repro.apps.run_app``) remain as thin shims for
existing code and tests; new workloads should be specs, not code.
"""

from repro.api.firmware import (
    FirmwareBuild,
    build_firmware,
    default_peripherals,
    device_for,
)
from repro.api.results import (
    AttackDetails,
    AnalyzeOutcome,
    AttestOutcome,
    BuildArtifacts,
    DeviceAttestation,
    DeviceVerification,
    FleetRunDetails,
    RolloutDetails,
    RunOutcome,
    ScenarioResult,
    VerifyOutcome,
    envelope,
    report_to_dict,
)
from repro.api.session import Session, build_peripherals, run_scenario
from repro.api.spec import (
    FIRMWARE_KINDS,
    PERIPHERAL_NAMES,
    SCHEMA,
    SECURITY_PROFILES,
    SPEC_VERSION,
    AnalyzeSpec,
    FaultSpec,
    FirmwareSpec,
    FleetSpec,
    LimitsSpec,
    RolloutSpec,
    ScenarioSpec,
    SpecError,
    as_spec,
)

__all__ = [
    "AnalyzeOutcome",
    "AnalyzeSpec",
    "AttackDetails",
    "AttestOutcome",
    "BuildArtifacts",
    "DeviceAttestation",
    "DeviceVerification",
    "FIRMWARE_KINDS",
    "FaultSpec",
    "FirmwareBuild",
    "FirmwareSpec",
    "FleetRunDetails",
    "FleetSpec",
    "LimitsSpec",
    "PERIPHERAL_NAMES",
    "RolloutDetails",
    "RolloutSpec",
    "RunOutcome",
    "SCHEMA",
    "SECURITY_PROFILES",
    "SPEC_VERSION",
    "ScenarioResult",
    "ScenarioSpec",
    "Session",
    "SpecError",
    "VerifyOutcome",
    "as_spec",
    "build_firmware",
    "build_peripherals",
    "default_peripherals",
    "device_for",
    "envelope",
    "report_to_dict",
    "run_scenario",
]
