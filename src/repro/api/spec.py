"""Declarative scenario descriptions: the input half of the public API.

A :class:`ScenarioSpec` is a plain, JSON-serialisable description of
one workload -- *what* to build and run, never *how*.  Three workload
shapes fall out of its optional fields:

* **run**    -- firmware (a registered Table IV app, mini-C text, or
  raw assembly) executed on one device at a security level;
* **attack** -- one scenario from :mod:`repro.attacks` launched
  against the standard victim at a security level;
* **fleet**  -- N devices sharing one firmware image, enrolled and
  managed by the verifier, optionally with a staged rollout.

Every spec round-trips through ``to_dict``/``from_dict`` (and the
JSON convenience wrappers) without loss, and ``validate()`` raises
:class:`SpecError` naming the exact offending field, so a config file
typo fails loudly instead of silently running the wrong scenario.
"""

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

SCHEMA = "eilid.scenario"
SPEC_VERSION = 1

FIRMWARE_KINDS = ("app", "minicc", "asm")
VARIANTS = ("original", "eilid")
SECURITY_PROFILES = ("none", "casu", "eilid")

# Declarative peripheral stimulus: name -> the JSON-safe config keys
# its factory understands (see repro.api.session.build_peripherals).
PERIPHERAL_CONFIG_KEYS = {
    "gpio": ("inputs",),
    "timer": (),
    "adc": ("channels", "hold"),
    "uart": ("rx", "rx_irq"),
    "lcd": (),
    "ultrasonic": ("echo_widths",),
    "harness": (),
}
PERIPHERAL_NAMES = tuple(PERIPHERAL_CONFIG_KEYS)


class SpecError(ValueError):
    """A scenario field failed validation; ``.field`` names it."""

    def __init__(self, field_name: str, message: str):
        self.field = field_name
        super().__init__(f"{field_name}: {message}")


def _check_keys(data: dict, allowed, field_name: str):
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            field_name,
            f"unknown key(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(sorted(allowed))}")


def _require(condition, field_name, message):
    if not condition:
        raise SpecError(field_name, message)


# ---- firmware ---------------------------------------------------------------


@dataclass(frozen=True)
class FirmwareSpec:
    """What runs on the device(s): one of three source kinds.

    * ``kind="app"``    -- *app* names a registered Table IV application;
    * ``kind="minicc"`` -- *source* is mini-C text, compiled on build;
    * ``kind="asm"``    -- *source* is raw assembly.  ``link_rom``
      additionally links the trusted ROM (needed for the secure-update
      routine); ``variant="eilid"`` runs the instrumenter over it.
    """

    kind: str = "app"
    app: Optional[str] = None
    source: Optional[str] = None
    variant: str = "eilid"
    name: str = "scenario"
    link_rom: bool = True

    def validate(self, prefix="firmware"):
        _require(self.kind in FIRMWARE_KINDS, f"{prefix}.kind",
                 f"unknown firmware kind {self.kind!r}; "
                 f"one of {', '.join(FIRMWARE_KINDS)}")
        _require(self.variant in VARIANTS, f"{prefix}.variant",
                 f"unknown variant {self.variant!r}; "
                 f"one of {', '.join(VARIANTS)}")
        if self.kind == "app":
            _require(self.app, f"{prefix}.app",
                     "a registered application name is required "
                     "when kind is 'app'")
            from repro.apps.registry import APPS

            _require(self.app in APPS, f"{prefix}.app",
                     f"unknown application {self.app!r}; "
                     f"one of {', '.join(sorted(APPS))}")
            _require(self.source is None, f"{prefix}.source",
                     "must be omitted when kind is 'app'")
        else:
            _require(self.source, f"{prefix}.source",
                     f"source text is required when kind is {self.kind!r}")
            _require(self.app is None, f"{prefix}.app",
                     f"must be omitted when kind is {self.kind!r}")
        return self

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "app": self.app,
            "source": self.source,
            "variant": self.variant,
            "name": self.name,
            "link_rom": self.link_rom,
        }

    @staticmethod
    def from_dict(data: dict, prefix="firmware") -> "FirmwareSpec":
        _check_keys(data, ("kind", "app", "source", "variant", "name",
                           "link_rom"), prefix)
        return FirmwareSpec(
            kind=data.get("kind", "app"),
            app=data.get("app"),
            source=data.get("source"),
            variant=data.get("variant", "eilid"),
            name=data.get("name", "scenario"),
            link_rom=data.get("link_rom", True),
        )


# ---- evidence / execution limits --------------------------------------------


@dataclass(frozen=True)
class LimitsSpec:
    """Evidence bounds and run budgets (None = device defaults)."""

    max_events: Optional[int] = None
    trace_capacity: Optional[int] = None
    decode_cache: Optional[bool] = None
    max_cycles: int = 2_000_000
    max_steps: Optional[int] = None

    def validate(self, prefix="limits"):
        if self.max_events is not None:
            _require(self.max_events >= 1, f"{prefix}.max_events",
                     "must be >= 1")
        if self.trace_capacity is not None:
            _require(self.trace_capacity >= 0, f"{prefix}.trace_capacity",
                     "must be >= 0 (0 disables recording)")
        _require(self.max_cycles > 0, f"{prefix}.max_cycles", "must be > 0")
        if self.max_steps is not None:
            _require(self.max_steps > 0, f"{prefix}.max_steps", "must be > 0")
        return self

    def device_kwargs(self) -> dict:
        """The knobs forwarded to :class:`repro.device.Device`."""
        return {
            "max_events": self.max_events,
            "trace_capacity": self.trace_capacity,
            "decode_cache": self.decode_cache,
        }

    def to_dict(self) -> dict:
        return {
            "max_events": self.max_events,
            "trace_capacity": self.trace_capacity,
            "decode_cache": self.decode_cache,
            "max_cycles": self.max_cycles,
            "max_steps": self.max_steps,
        }

    @staticmethod
    def from_dict(data: dict, prefix="limits") -> "LimitsSpec":
        _check_keys(data, ("max_events", "trace_capacity", "decode_cache",
                           "max_cycles", "max_steps"), prefix)
        return LimitsSpec(
            max_events=data.get("max_events"),
            trace_capacity=data.get("trace_capacity"),
            decode_cache=data.get("decode_cache"),
            max_cycles=data.get("max_cycles", 2_000_000),
            max_steps=data.get("max_steps"),
        )


# ---- fleet ------------------------------------------------------------------


@dataclass(frozen=True)
class RolloutSpec:
    """One staged firmware campaign, including adversarial knobs.

    ``backend`` picks the campaign executor: ``"thread"`` shares the
    live simulated devices, ``"process"`` shards waves across worker
    processes rebuilt from the firmware spec + fleet seed.  ``resume``
    skips devices whose (durable) registry record already shows the
    target version -- the continuation path after a killed campaign.
    """

    version: int = 1
    wave_fractions: Tuple[float, ...] = (0.05, 0.25, 1.0)
    failure_threshold: float = 0.10
    tamper_fraction: float = 0.0
    rollback_fraction: float = 0.0
    workers: int = 0
    batch_size: int = 32
    verify_after_wave: bool = False
    backend: str = "thread"
    resume: bool = False
    # After every wave's durability flush, write the process metrics
    # snapshot to this path (``.prom`` suffix -> Prometheus text,
    # anything else -> the JSON envelope; atomic replace either way).
    metrics_dump: Optional[str] = None

    def validate(self, prefix="fleet.rollout"):
        from repro.fleet.campaign import CAMPAIGN_BACKENDS

        _require(self.version >= 1, f"{prefix}.version", "must be >= 1")
        _require(self.backend in CAMPAIGN_BACKENDS, f"{prefix}.backend",
                 f"unknown backend {self.backend!r}; "
                 f"one of {', '.join(CAMPAIGN_BACKENDS)}")
        fractions = tuple(self.wave_fractions)
        _require(fractions and sorted(fractions) == list(fractions),
                 f"{prefix}.wave_fractions", "must be increasing")
        _require(all(0.0 < fraction <= 1.0 for fraction in fractions),
                 f"{prefix}.wave_fractions",
                 "every wave fraction must be in (0, 1]")
        _require(fractions and fractions[-1] == 1.0,
                 f"{prefix}.wave_fractions",
                 "the final wave must cover the whole fleet (1.0)")
        _require(0.0 <= self.failure_threshold <= 1.0,
                 f"{prefix}.failure_threshold", "must be in [0, 1]")
        for name in ("tamper_fraction", "rollback_fraction"):
            _require(0.0 <= getattr(self, name) <= 1.0,
                     f"{prefix}.{name}", "must be in [0, 1]")
        _require(self.workers >= 0, f"{prefix}.workers", "must be >= 0")
        _require(self.batch_size >= 1, f"{prefix}.batch_size", "must be >= 1")
        if self.metrics_dump is not None:
            _require(isinstance(self.metrics_dump, str) and self.metrics_dump,
                     f"{prefix}.metrics_dump",
                     "must be a non-empty path string")
        return self

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "wave_fractions": list(self.wave_fractions),
            "failure_threshold": self.failure_threshold,
            "tamper_fraction": self.tamper_fraction,
            "rollback_fraction": self.rollback_fraction,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "verify_after_wave": self.verify_after_wave,
            "backend": self.backend,
            "resume": self.resume,
            "metrics_dump": self.metrics_dump,
        }

    @staticmethod
    def from_dict(data: dict, prefix="fleet.rollout") -> "RolloutSpec":
        _check_keys(data, ("version", "wave_fractions", "failure_threshold",
                           "tamper_fraction", "rollback_fraction", "workers",
                           "batch_size", "verify_after_wave", "backend",
                           "resume", "metrics_dump"), prefix)
        return RolloutSpec(
            version=data.get("version", 1),
            wave_fractions=tuple(data.get("wave_fractions", (0.05, 0.25, 1.0))),
            failure_threshold=data.get("failure_threshold", 0.10),
            tamper_fraction=data.get("tamper_fraction", 0.0),
            rollback_fraction=data.get("rollback_fraction", 0.0),
            workers=data.get("workers", 0),
            batch_size=data.get("batch_size", 32),
            verify_after_wave=data.get("verify_after_wave", False),
            backend=data.get("backend", "thread"),
            resume=data.get("resume", False),
            metrics_dump=data.get("metrics_dump"),
        )


# ---- fault sweeps -----------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One seeded fault-injection sweep (see :mod:`repro.faults`).

    ``count=None`` sweeps every enumerated site; ``kinds``/``profiles``
    default to the full set.  ``backend="process"`` runs the sweep on a
    process pool by shipping device snapshots to the workers;
    ``warmup_steps`` advances the honest device before the snapshot is
    taken, so faults land mid-workload instead of at reset.
    """

    seed: int = 0
    count: Optional[int] = None
    kinds: Tuple[str, ...] = ("imem-flip", "insn-skip", "reg-corrupt",
                              "periph-corrupt")
    profiles: Tuple[str, ...] = ("none", "casu", "eilid")
    backend: str = "thread"
    workers: int = 4
    warmup_steps: int = 0
    max_cycles: int = 2_000_000

    def validate(self, prefix="faults"):
        from repro.faults.campaign import FAULT_BACKENDS, FAULT_PROFILES
        from repro.faults.sites import FAULT_KINDS

        _require(_int_like(self.seed) and self.seed >= 0,
                 f"{prefix}.seed", "must be an integer >= 0")
        if self.count is not None:
            _require(_int_like(self.count) and self.count >= 1,
                     f"{prefix}.count", "must be an integer >= 1 (or null "
                     "to sweep every site)")
        _require(len(self.kinds) > 0, f"{prefix}.kinds",
                 "at least one fault kind is required")
        unknown = sorted(set(self.kinds) - set(FAULT_KINDS))
        _require(not unknown, f"{prefix}.kinds",
                 f"unknown fault kind(s) {', '.join(map(repr, unknown))}; "
                 f"one of {', '.join(FAULT_KINDS)}")
        _require(len(self.profiles) > 0, f"{prefix}.profiles",
                 "at least one defense profile is required")
        unknown = sorted(set(self.profiles) - set(FAULT_PROFILES))
        _require(not unknown, f"{prefix}.profiles",
                 f"unknown profile(s) {', '.join(map(repr, unknown))}; "
                 f"one of {', '.join(FAULT_PROFILES)}")
        _require(self.backend in FAULT_BACKENDS, f"{prefix}.backend",
                 f"unknown backend {self.backend!r}; "
                 f"one of {', '.join(FAULT_BACKENDS)}")
        _require(_int_like(self.workers) and self.workers >= 1,
                 f"{prefix}.workers", "must be an integer >= 1")
        _require(_int_like(self.warmup_steps) and self.warmup_steps >= 0,
                 f"{prefix}.warmup_steps", "must be an integer >= 0")
        _require(_int_like(self.max_cycles) and self.max_cycles >= 1,
                 f"{prefix}.max_cycles", "must be an integer >= 1")
        return self

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "kinds": list(self.kinds),
            "profiles": list(self.profiles),
            "backend": self.backend,
            "workers": self.workers,
            "warmup_steps": self.warmup_steps,
            "max_cycles": self.max_cycles,
        }

    @staticmethod
    def from_dict(data: dict, prefix="faults") -> "FaultSpec":
        _check_keys(data, ("seed", "count", "kinds", "profiles", "backend",
                           "workers", "warmup_steps", "max_cycles"), prefix)
        spec = FaultSpec(
            seed=data.get("seed", 0),
            count=data.get("count"),
            kinds=tuple(data.get("kinds", FaultSpec.kinds)),
            profiles=tuple(data.get("profiles", FaultSpec.profiles)),
            backend=data.get("backend", "thread"),
            workers=data.get("workers", 4),
            warmup_steps=data.get("warmup_steps", 0),
            max_cycles=data.get("max_cycles", 2_000_000),
        )
        return spec


# ---- static analysis --------------------------------------------------------


@dataclass(frozen=True)
class AnalyzeSpec:
    """One static-analysis run over the scenario's firmware image.

    ``rules`` selects the rule groups (default: all of them --
    ``stack``, ``regions``, ``coverage``); ``stack_margin`` is the
    minimum stack headroom (bytes) below which the stack rule warns;
    ``irq_nesting`` is the worst-case number of nested interrupts the
    stack bound assumes.
    """

    rules: Tuple[str, ...] = ("stack", "regions", "coverage")
    stack_margin: int = 64
    irq_nesting: int = 1

    def validate(self, prefix="analyze"):
        from repro.analyze.runner import RULE_GROUPS

        _require(len(self.rules) > 0, f"{prefix}.rules",
                 "at least one rule group is required")
        unknown = sorted(set(self.rules) - set(RULE_GROUPS))
        _require(not unknown, f"{prefix}.rules",
                 f"unknown rule group(s) {', '.join(map(repr, unknown))}; "
                 f"one of {', '.join(RULE_GROUPS)}")
        _require(_int_like(self.stack_margin) and self.stack_margin >= 0,
                 f"{prefix}.stack_margin", "must be an integer >= 0")
        _require(_int_like(self.irq_nesting) and self.irq_nesting >= 0,
                 f"{prefix}.irq_nesting", "must be an integer >= 0")
        return self

    def to_dict(self) -> dict:
        return {
            "rules": list(self.rules),
            "stack_margin": self.stack_margin,
            "irq_nesting": self.irq_nesting,
        }

    @staticmethod
    def from_dict(data: dict, prefix="analyze") -> "AnalyzeSpec":
        _check_keys(data, ("rules", "stack_margin", "irq_nesting"), prefix)
        return AnalyzeSpec(
            rules=tuple(data.get("rules", AnalyzeSpec.rules)),
            stack_margin=data.get("stack_margin", 64),
            irq_nesting=data.get("irq_nesting", 1),
        )


_ALERT_OVERRIDE_KEYS = ("threshold", "window", "min_events", "severity")


def _validate_alerts(alerts, prefix: str):
    """Value-shape checks for ``FleetSpec.alerts`` (see its docstring)."""
    from repro.obs.alerts import RULE_REGISTRY

    if alerts is True:
        return
    _require(isinstance(alerts, dict), prefix,
             "must be True (default rules) or a {rule: config} mapping")
    for name, value in alerts.items():
        _require(name in RULE_REGISTRY, f"{prefix}.{name}",
                 f"unknown alert rule; one of {', '.join(RULE_REGISTRY)}")
        if isinstance(value, bool) or value is None:
            continue
        if isinstance(value, (int, float)):
            continue
        _require(isinstance(value, dict), f"{prefix}.{name}",
                 "must be a bool, a threshold number, or an override dict")
        for key, override in value.items():
            _require(key in _ALERT_OVERRIDE_KEYS, f"{prefix}.{name}.{key}",
                     f"unknown override; one of "
                     f"{', '.join(_ALERT_OVERRIDE_KEYS)}")
            if key == "severity":
                _require(isinstance(override, str) and override,
                         f"{prefix}.{name}.severity",
                         "must be a non-empty string")
            else:
                _require(isinstance(override, (int, float))
                         and not isinstance(override, bool),
                         f"{prefix}.{name}.{key}", "must be a number")
        if "window" in value:
            _require(value["window"] > 0, f"{prefix}.{name}.window",
                     "must be > 0 seconds")
        if "min_events" in value:
            _require(value["min_events"] >= 1, f"{prefix}.{name}.min_events",
                     "must be >= 1")


@dataclass(frozen=True)
class FleetSpec:
    """Shape of a managed-fleet scenario (devices share one image).

    ``store`` makes the verifier's registry durable: a filesystem path
    (``.db``/``.sqlite`` -> SQLite, anything else -> JSON lines) that
    device records -- lifecycle, versions, nonce high-water marks --
    are persisted to and restored from across process restarts.

    ``events`` does the same for the longitudinal telemetry log (same
    suffix dispatch); without it the fleet still records events, but
    only in memory for the life of the process.

    ``alerts`` switches the live alert engine on over that event
    stream: ``True`` attaches the default rule panel, a dict tunes it
    per rule -- each key a rule name (``quarantine-rate``,
    ``wave-stall``, ``violation-surge``, ``replay-burst``), each value
    ``False`` (drop), ``True`` (defaults), a number (threshold
    override) or a dict of ``threshold``/``window``/``min_events``/
    ``severity`` overrides.
    """

    size: int = 100
    loss: float = 0.0
    reorder: float = 0.0
    seed: int = 0
    max_attempts: int = 4
    verify_traces: bool = False
    run_cycles: int = 2_000
    store: Optional[str] = None
    events: Optional[str] = None
    alerts: Optional[object] = None
    rollout: Optional[RolloutSpec] = None

    def validate(self, prefix="fleet"):
        _require(self.size >= 0, f"{prefix}.size", "must be >= 0")
        for name in ("loss", "reorder"):
            _require(0.0 <= getattr(self, name) <= 1.0,
                     f"{prefix}.{name}", "must be in [0, 1]")
        _require(self.max_attempts >= 1, f"{prefix}.max_attempts",
                 "must be >= 1")
        _require(self.run_cycles >= 0, f"{prefix}.run_cycles", "must be >= 0")
        if self.store is not None:
            _require(isinstance(self.store, str) and self.store,
                     f"{prefix}.store", "must be a non-empty path string")
        if self.events is not None:
            _require(isinstance(self.events, str) and self.events,
                     f"{prefix}.events", "must be a non-empty path string")
        if self.alerts is not None:
            _validate_alerts(self.alerts, f"{prefix}.alerts")
        if self.rollout is not None:
            self.rollout.validate(f"{prefix}.rollout")
        return self

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "loss": self.loss,
            "reorder": self.reorder,
            "seed": self.seed,
            "max_attempts": self.max_attempts,
            "verify_traces": self.verify_traces,
            "run_cycles": self.run_cycles,
            "store": self.store,
            "events": self.events,
            "alerts": self.alerts,
            "rollout": None if self.rollout is None else self.rollout.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict, prefix="fleet") -> "FleetSpec":
        _check_keys(data, ("size", "loss", "reorder", "seed", "max_attempts",
                           "verify_traces", "run_cycles", "store", "events",
                           "alerts", "rollout"),
                    prefix)
        rollout = data.get("rollout")
        return FleetSpec(
            size=data.get("size", 100),
            loss=data.get("loss", 0.0),
            reorder=data.get("reorder", 0.0),
            seed=data.get("seed", 0),
            max_attempts=data.get("max_attempts", 4),
            verify_traces=data.get("verify_traces", False),
            run_cycles=data.get("run_cycles", 2_000),
            store=data.get("store"),
            events=data.get("events"),
            alerts=data.get("alerts"),
            rollout=None if rollout is None
            else RolloutSpec.from_dict(rollout, f"{prefix}.rollout"),
        )


# ---- peripheral config value shapes -----------------------------------------


def _int_like(value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True
    if isinstance(value, str):
        try:
            int(value)
        except ValueError:
            return False
        return True
    return False


def _require_int_list(values, field_name, what):
    _require(isinstance(values, (list, tuple)) and values
             and all(_int_like(v) for v in values),
             field_name, f"{what} must be a non-empty list of integers")


def _validate_peripheral_config(name: str, config: dict):
    """Value-shape checks, so a typo'd document fails at validate()
    with a field-naming SpecError instead of a mid-run traceback."""
    prefix = f"peripherals.{name}"
    if name == "gpio" and "inputs" in config:
        _require_int_list(config["inputs"], f"{prefix}.inputs", "inputs")
    elif name == "adc":
        channels = config.get("channels")
        if channels is not None:
            _require(isinstance(channels, dict), f"{prefix}.channels",
                     "must map channel numbers to sample lists")
            for channel, values in channels.items():
                _require(_int_like(channel), f"{prefix}.channels",
                         f"channel key {channel!r} must be an integer")
                _require_int_list(values, f"{prefix}.channels",
                                  f"channel {channel} samples")
        if "hold" in config:
            _require(_int_like(config["hold"]) and int(config["hold"]) >= 1,
                     f"{prefix}.hold", "must be an integer >= 1")
    elif name == "uart":
        rx = config.get("rx")
        if rx is not None:
            _require(isinstance(rx, (list, tuple)), f"{prefix}.rx",
                     "must be a list of [cycle, byte] pairs")
            for entry in rx:
                _require(isinstance(entry, (list, tuple)) and len(entry) == 2
                         and all(_int_like(v) for v in entry),
                         f"{prefix}.rx",
                         f"entry {entry!r} must be a [cycle, byte] pair")
        if "rx_irq" in config:
            _require(isinstance(config["rx_irq"], bool), f"{prefix}.rx_irq",
                     "must be a boolean")
    elif name == "ultrasonic" and "echo_widths" in config:
        _require_int_list(config["echo_widths"], f"{prefix}.echo_widths",
                          "echo_widths")


# ---- the scenario -----------------------------------------------------------


@dataclass
class ScenarioSpec:
    """One complete scenario: firmware + security + stimulus + shape.

    ``workload`` is derived, never stored: ``"fleet"`` when *fleet* is
    set, ``"attack"`` when *attack* is set, ``"run"`` otherwise.
    """

    name: str = "scenario"
    firmware: FirmwareSpec = FirmwareSpec()
    security: str = "eilid"
    peripherals: Dict[str, dict] = field(default_factory=dict)
    attack: Optional[str] = None
    limits: LimitsSpec = LimitsSpec()
    fleet: Optional[FleetSpec] = None

    @property
    def workload(self) -> str:
        if self.fleet is not None:
            return "fleet"
        if self.attack is not None:
            return "attack"
        return "run"

    # ---- validation -------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        _require(isinstance(self.name, str) and self.name, "name",
                 "must be a non-empty string")
        _require(self.security in SECURITY_PROFILES, "security",
                 f"unknown security profile {self.security!r}; "
                 f"one of {', '.join(SECURITY_PROFILES)}")
        _require(not (self.attack and self.fleet), "attack",
                 "a scenario is either an attack or a fleet, not both")
        if self.attack is not None:
            from repro.attacks import ATTACKS

            _require(self.attack in ATTACKS, "attack",
                     f"unknown attack {self.attack!r}; "
                     f"one of {', '.join(sorted(ATTACKS))}")
            # The attack harness owns its firmware, peripherals and
            # execution budget; reject customisation rather than
            # silently running something other than what was asked for.
            _require(not self.peripherals, "peripherals",
                     "attack scenarios use the victim's fixed peripherals")
            _require(self.firmware == FirmwareSpec(), "firmware",
                     "attack scenarios run the attack's own firmware; "
                     "leave firmware unset")
            _require(self.limits == LimitsSpec(), "limits",
                     "attack scenarios use the harness's execution "
                     "budget; leave limits unset")
        elif self.fleet is not None:
            self.fleet.validate()
            _require(not self.peripherals, "peripherals",
                     "fleet devices use the firmware's default peripherals")
            # Any deviation from the default means the author is trying
            # to pick the fleet image: validate it fully rather than
            # silently falling back to the built-in fleet-node app.
            if self.firmware != FirmwareSpec():
                self.firmware.validate()
        else:
            self.firmware.validate()
        self._validate_peripherals()
        self.limits.validate()
        return self

    def _validate_peripherals(self):
        _require(isinstance(self.peripherals, dict), "peripherals",
                 "must be a mapping of peripheral name to config")
        for name, config in self.peripherals.items():
            _require(name in PERIPHERAL_NAMES, "peripherals",
                     f"malformed peripheral name {name!r}; "
                     f"one of {', '.join(PERIPHERAL_NAMES)}")
            _require(isinstance(config, dict), f"peripherals.{name}",
                     "config must be a mapping")
            _check_keys(config, PERIPHERAL_CONFIG_KEYS[name],
                        f"peripherals.{name}")
            _validate_peripheral_config(name, config)

    # ---- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "version": SPEC_VERSION,
            "name": self.name,
            "firmware": self.firmware.to_dict(),
            "security": self.security,
            "peripherals": {name: dict(config)
                            for name, config in self.peripherals.items()},
            "attack": self.attack,
            "limits": self.limits.to_dict(),
            "fleet": None if self.fleet is None else self.fleet.to_dict(),
        }

    def to_json(self, indent=None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        _require(isinstance(data, dict), "scenario",
                 "a scenario document must be a mapping")
        _check_keys(data, ("schema", "version", "name", "firmware",
                           "security", "peripherals", "attack", "limits",
                           "fleet"), "scenario")
        schema = data.get("schema", SCHEMA)
        _require(schema == SCHEMA, "schema",
                 f"unsupported schema {schema!r}; expected {SCHEMA!r}")
        version = data.get("version", SPEC_VERSION)
        _require(isinstance(version, int) and 1 <= version <= SPEC_VERSION,
                 "version", f"unsupported spec version {version!r}")
        fleet = data.get("fleet")
        return ScenarioSpec(
            name=data.get("name", "scenario"),
            firmware=FirmwareSpec.from_dict(data.get("firmware", {})),
            security=data.get("security", "eilid"),
            peripherals=data.get("peripherals", {}) or {},
            attack=data.get("attack"),
            limits=LimitsSpec.from_dict(data.get("limits", {})),
            fleet=None if fleet is None else FleetSpec.from_dict(fleet),
        )

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError("scenario", f"not valid JSON: {error}") from None
        return ScenarioSpec.from_dict(data)

    def with_(self, **changes) -> "ScenarioSpec":
        """A modified copy (specs are cheap value objects)."""
        return replace(self, **changes)


def as_spec(spec) -> "ScenarioSpec":
    """Coerce a ScenarioSpec / dict / JSON string into a ScenarioSpec."""
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, dict):
        return ScenarioSpec.from_dict(spec)
    if isinstance(spec, str):
        return ScenarioSpec.from_json(spec)
    raise SpecError("scenario",
                    f"expected a ScenarioSpec, dict or JSON string, "
                    f"got {type(spec).__name__}")
