"""Typed, serialisable results: the output half of the public API.

Every stage of the scenario pipeline returns one of these dataclasses,
and every one of them serialises via ``to_dict()`` into a JSON document
carrying ``schema`` and ``version`` keys -- the uniform envelope the
CLI's ``--json`` mode and any downstream tooling rely on.

Fleet-scale stages additionally stream: per-device records are yielded
lazily by ``Session.attest_stream()`` / ``Session.verify_stream()``
rather than materialised, and the aggregate outcomes here carry counts
plus a bounded sample of offender ids.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

RESULT_VERSION = 1

# How many offender device-ids an aggregate outcome embeds; the full
# stream is available via the Session's *_stream() generators.
SAMPLE_LIMIT = 10


def envelope(schema: str, **payload) -> dict:
    """The uniform JSON document shape: schema + version + payload."""
    doc = {"schema": f"eilid.{schema}", "version": RESULT_VERSION}
    doc.update(payload)
    return doc


# ---- build ------------------------------------------------------------------


@dataclass(frozen=True)
class BuildArtifacts:
    """What came out of the firmware build stage."""

    scenario: str
    workload: str
    firmware_kind: str
    variant: str
    program_name: str
    app_code_bytes: int
    build_count: int
    instrumented_calls: int
    instrumented_returns: int
    inserted_bytes: int
    build_ms: float

    def to_dict(self) -> dict:
        return envelope(
            "build",
            scenario=self.scenario,
            workload=self.workload,
            firmware_kind=self.firmware_kind,
            variant=self.variant,
            program_name=self.program_name,
            app_code_bytes=self.app_code_bytes,
            build_count=self.build_count,
            instrumented_calls=self.instrumented_calls,
            instrumented_returns=self.instrumented_returns,
            inserted_bytes=self.inserted_bytes,
            build_ms=round(self.build_ms, 3),
        )


# ---- run --------------------------------------------------------------------


@dataclass(frozen=True)
class AttackDetails:
    """How one attack scenario ended (see repro.attacks)."""

    name: str
    outcome: str  # hijacked | reset | no-effect | allowed
    detail: str
    detected: bool  # the monitor reset the device before the goal

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "detail": self.detail,
            "detected": self.detected,
        }


@dataclass(frozen=True)
class RolloutDetails:
    """Aggregate view of one staged campaign."""

    status: str
    target_version: int
    applied: int
    failed: int
    skipped: int
    halted: bool
    halt_reason: str
    waves: Tuple[dict, ...]
    devices_per_sec: float
    backend: str = "thread"
    resumed: int = 0  # devices skipped by resume (already at target)
    # Span timings observed during this campaign (histogram snapshots
    # keyed by span name, e.g. "campaign.wave.ms"); None when the
    # process metrics registry is disabled.
    metrics: Optional[dict] = None
    # Alerts the fleet's live engine fired during (or before) this
    # campaign: () when the engine is attached but quiet, None when
    # no engine is attached (FleetSpec.alerts unset).
    alerts: Optional[Tuple[dict, ...]] = None

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "target_version": self.target_version,
            "applied": self.applied,
            "failed": self.failed,
            "skipped": self.skipped,
            "halted": self.halted,
            "halt_reason": self.halt_reason,
            "waves": list(self.waves),
            "devices_per_sec": round(self.devices_per_sec, 1),
            "backend": self.backend,
            "resumed": self.resumed,
            "metrics": self.metrics,
            "alerts": None if self.alerts is None else list(self.alerts),
        }


@dataclass(frozen=True)
class FleetRunDetails:
    """Aggregate view of a fleet's enroll + run (+ rollout) phases."""

    size: int
    enrolled: int
    run_cycles: int
    rollout: Optional[RolloutDetails] = None

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "enrolled": self.enrolled,
            "run_cycles": self.run_cycles,
            "rollout": None if self.rollout is None else self.rollout.to_dict(),
        }


@dataclass(frozen=True)
class RunOutcome:
    """One executed scenario.  Fields aggregate across a fleet."""

    scenario: str
    workload: str
    security: str
    cycles: int
    instructions: int
    steps: int
    done: bool
    done_value: Optional[int]
    violations: Tuple[str, ...]
    reset_count: int
    attack: Optional[AttackDetails] = None
    fleet: Optional[FleetRunDetails] = None

    @property
    def run_time_us(self) -> float:
        """Run time at the paper's 100 MHz clock."""
        return self.cycles / 100.0

    @property
    def ok(self) -> bool:
        """Did this scenario end the way its workload defines success?"""
        if self.attack is not None:
            return self.attack.outcome != "hijacked"
        if self.fleet is not None:
            if self.fleet.enrolled != self.fleet.size:
                return False
            return self.fleet.rollout is None or not self.fleet.rollout.halted
        return self.done and not self.violations

    def to_dict(self) -> dict:
        return envelope(
            "run",
            scenario=self.scenario,
            workload=self.workload,
            security=self.security,
            ok=self.ok,
            cycles=self.cycles,
            instructions=self.instructions,
            steps=self.steps,
            done=self.done,
            done_value=self.done_value,
            run_time_us=self.run_time_us,
            violations=list(self.violations),
            reset_count=self.reset_count,
            attack=None if self.attack is None else self.attack.to_dict(),
            fleet=None if self.fleet is None else self.fleet.to_dict(),
        )


# ---- attest -----------------------------------------------------------------


@dataclass(frozen=True)
class DeviceAttestation:
    """One streamed per-device attestation record."""

    device_id: str
    ok: bool
    detail: str
    attempts: int
    firmware_hash: Optional[str] = None
    firmware_version: Optional[int] = None

    def to_dict(self) -> dict:
        return envelope(
            "attest.device",
            device_id=self.device_id,
            ok=self.ok,
            detail=self.detail,
            attempts=self.attempts,
            firmware_hash=self.firmware_hash,
            firmware_version=self.firmware_version,
        )


@dataclass(frozen=True)
class AttestOutcome:
    """Attestation evidence, aggregated across the scenario's devices."""

    scenario: str
    workload: str
    ok: bool
    devices_total: int
    devices_ok: int
    report: Optional[dict] = None  # the single-device report body
    quarantined: Tuple[str, ...] = ()  # bounded sample of offender ids

    def to_dict(self) -> dict:
        return envelope(
            "attest",
            scenario=self.scenario,
            workload=self.workload,
            ok=self.ok,
            devices_total=self.devices_total,
            devices_ok=self.devices_ok,
            report=self.report,
            quarantined=list(self.quarantined),
        )


def report_to_dict(report) -> dict:
    """Serialise an AttestationReport (repro.eilid.trusted_sw)."""
    return {
        "firmware_hash": report.firmware_hash,
        "firmware_version": report.firmware_version,
        "reset_count": report.reset_count,
        "violation_reasons": list(report.violation_reasons),
        "cycle": report.cycle,
        "violation_count": report.violation_count,
        "violation_totals": list(report.violation_totals),
        "trace_digest": report.trace_digest,
        "trace_edges": report.trace_edges,
        "trace_dropped": report.trace_dropped,
    }


# ---- verify -----------------------------------------------------------------


@dataclass(frozen=True)
class DeviceVerification:
    """One streamed per-device trace-replay record."""

    device_id: str
    ok: bool
    reason: str
    edges_checked: int
    dropped: int = 0  # edges the device's bounded trace ring evicted

    def to_dict(self) -> dict:
        return envelope(
            "verify.device",
            device_id=self.device_id,
            ok=self.ok,
            reason=self.reason,
            edges_checked=self.edges_checked,
            dropped=self.dropped,
        )


@dataclass(frozen=True)
class VerifyOutcome:
    """Verifier-side trace attestation against the recovered CFI policy."""

    scenario: str
    workload: str
    ok: bool
    policy_digest: str
    edges_checked: int
    dropped: int
    reason: str
    devices_total: int
    devices_ok: int
    rejected: Tuple[str, ...] = ()  # bounded sample of offender ids

    def to_dict(self) -> dict:
        return envelope(
            "verify",
            scenario=self.scenario,
            workload=self.workload,
            ok=self.ok,
            policy_digest=self.policy_digest,
            edges_checked=self.edges_checked,
            dropped=self.dropped,
            reason=self.reason,
            devices_total=self.devices_total,
            devices_ok=self.devices_ok,
            rejected=list(self.rejected),
        )


# ---- static analysis --------------------------------------------------------


@dataclass(frozen=True)
class AnalyzeOutcome:
    """One static-analysis run, plus optional sweep correlation.

    ``ok`` means no critical findings -- the gate fleets check before
    enrolling an image.  ``correlation`` is present only when a fault
    sweep was correlated: escape clusters, their overlapping findings,
    and the proposed policy tightenings.
    """

    scenario: str
    workload: str
    name: str
    variant: str
    ok: bool
    rules: Tuple[str, ...]
    counts: dict  # severity -> count
    findings: Tuple[dict, ...]
    stats: dict
    correlation: Optional[dict] = None

    def to_dict(self) -> dict:
        return envelope(
            "analyze",
            scenario=self.scenario,
            workload=self.workload,
            name=self.name,
            variant=self.variant,
            ok=self.ok,
            rules=list(self.rules),
            counts=dict(self.counts),
            findings=[dict(finding) for finding in self.findings],
            stats=dict(self.stats),
            correlation=self.correlation,
        )


# ---- the one-shot pipeline result -------------------------------------------


@dataclass(frozen=True)
class ScenarioResult:
    """Everything ``run_scenario`` produced: build -> run -> attest -> verify."""

    spec: dict
    build: BuildArtifacts
    run: RunOutcome
    attest: AttestOutcome
    verify: VerifyOutcome

    @property
    def ok(self) -> bool:
        return self.run.ok and self.attest.ok and self.verify.ok

    def to_dict(self) -> dict:
        return envelope(
            "scenario-result",
            ok=self.ok,
            spec=self.spec,
            build=self.build.to_dict(),
            run=self.run.to_dict(),
            attest=self.attest.to_dict(),
            verify=self.verify.to_dict(),
        )
