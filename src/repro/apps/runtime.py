"""Build and run applications in both variants (original / EILID).

``run_app`` is the measurement unit behind Table IV's "running time"
column: the device executes the app's scripted scenario until the DONE
write, and the elapsed cycle count at 100 MHz gives microseconds.
"""

from dataclasses import dataclass
from typing import Optional

from repro.device import Device, build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.eilid.policy import EilidPolicy
from repro.errors import ReproError
from repro.minicc import compile_c


@dataclass
class AppRun:
    app_name: str
    variant: str  # "original" | "eilid"
    device: Device
    cycles: int
    done: bool
    done_value: Optional[int]
    violations: list

    @property
    def run_time_us(self):
        return self.cycles / 100.0

    def output_events(self):
        """Observable I/O trace (for original-vs-EILID equivalence)."""
        events = []
        for peripheral in self.device.peripherals.values():
            events.extend(peripheral.events)
        events.sort(key=lambda e: (e.cycle, e.port))
        return [(e.port, e.value) for e in events if e.port != "harness.done"]


def build_app(spec, variant="original", builder: Optional[IterativeBuild] = None,
              policy: Optional[EilidPolicy] = None, verify_convergence=False):
    """Compile + assemble + (optionally) instrument one application.

    Returns the final :class:`repro.toolchain.BuildResult`.
    """
    builder = builder or IterativeBuild(policy=policy)
    asm = compile_c(spec.c_source, spec.name)
    app_file = f"{spec.name}.s"
    if variant == "original":
        return builder.build_original(asm, app_file)
    if variant == "eilid":
        result = builder.build_eilid(asm, app_file, verify_convergence=verify_convergence)
        return result.final
    raise ReproError(f"unknown variant {variant!r}")


def run_app(spec, variant="original", builder: Optional[IterativeBuild] = None,
            security: Optional[str] = None, max_cycles: Optional[int] = None) -> AppRun:
    """Build and execute one application to its DONE hand-off."""
    build = build_app(spec, variant, builder)
    if security is None:
        security = "eilid" if variant == "eilid" else "none"
    device = build_device(build.program, security=security,
                          peripherals=spec.make_peripherals())
    result = device.run(max_cycles=max_cycles or spec.max_cycles)
    return AppRun(
        app_name=spec.name,
        variant=variant,
        device=device,
        cycles=result.cycles,
        done=result.done,
        done_value=result.done_value,
        violations=result.violations,
    )
