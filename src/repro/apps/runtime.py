"""Build and run applications in both variants (original / EILID).

``run_app`` is the measurement unit behind Table IV's "running time"
column: the device executes the app's scripted scenario until the DONE
write, and the elapsed cycle count at 100 MHz gives microseconds.

.. deprecated::
    ``build_app``/``run_app`` remain as thin shims for the evaluation
    harness (which times builds with its own throwaway builders).  New
    workloads should go through :mod:`repro.api` --
    ``ScenarioSpec(firmware=FirmwareSpec(kind="app", ...))`` runs the
    same pipeline and shares the process-wide build cache; ``run_app``
    without an explicit *builder* routes through it.
"""

from dataclasses import dataclass
from typing import Optional

from repro.device import Device, build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.eilid.policy import EilidPolicy
from repro.errors import ReproError
from repro.minicc import compile_c


@dataclass
class AppRun:
    app_name: str
    variant: str  # "original" | "eilid"
    device: Device
    cycles: int
    done: bool
    done_value: Optional[int]
    violations: list

    @property
    def run_time_us(self):
        return self.cycles / 100.0

    def output_events(self):
        """Observable I/O trace (for original-vs-EILID equivalence)."""
        return self.device.output_events()


def build_app(spec, variant="original", builder: Optional[IterativeBuild] = None,
              policy: Optional[EilidPolicy] = None, verify_convergence=False):
    """Compile + assemble + (optionally) instrument one application.

    Returns the final :class:`repro.toolchain.BuildResult`.
    """
    builder = builder or IterativeBuild(policy=policy)
    asm = compile_c(spec.c_source, spec.name)
    app_file = f"{spec.name}.s"
    if variant == "original":
        return builder.build_original(asm, app_file)
    if variant == "eilid":
        result = builder.build_eilid(asm, app_file, verify_convergence=verify_convergence)
        return result.final
    raise ReproError(f"unknown variant {variant!r}")


def run_app(spec, variant="original", builder: Optional[IterativeBuild] = None,
            security: Optional[str] = None, max_cycles: Optional[int] = None) -> AppRun:
    """Build and execute one application to its DONE hand-off.

    Without an explicit *builder* this routes through the public
    scenario API (shared, cached firmware builds); passing a builder
    keeps the caller in control of build state (the evaluation harness
    times cold builds that way).
    """
    from repro.apps.registry import APPS

    if security is None:
        security = "eilid" if variant == "eilid" else "none"
    if builder is None and APPS.get(spec.name) is spec:
        from repro.api import (
            FirmwareSpec,
            LimitsSpec,
            ScenarioSpec,
            Session,
        )

        session = Session(ScenarioSpec(
            name=spec.name,
            firmware=FirmwareSpec(kind="app", app=spec.name, variant=variant),
            security=security,
            limits=LimitsSpec(max_cycles=max_cycles or spec.max_cycles),
        ))
        outcome = session.run()
        return AppRun(
            app_name=spec.name,
            variant=variant,
            device=session.device,
            cycles=outcome.cycles,
            done=outcome.done,
            done_value=outcome.done_value,
            # the raw RunResult's complete list, not the bounded ring
            violations=session.run_result.violations,
        )
    build = build_app(spec, variant, builder)
    device = build_device(build.program, security=security,
                          peripherals=spec.make_peripherals())
    result = device.run(max_cycles=max_cycles or spec.max_cycles)
    return AppRun(
        app_name=spec.name,
        variant=variant,
        device=device,
        cycles=result.cycles,
        done=result.done,
        done_value=result.done_value,
        violations=result.violations,
    )
