"""The seven evaluation applications of Table IV.

Each application mirrors one of the paper's publicly-available demos
(Seeed LaunchPad kit, OpenSyringePump, ticepd msp430-examples), ported
to the simulated peripherals: a sensing/actuation loop in mini-C with a
deterministic stimulus schedule and a DONE-port hand-off that ends the
measured run.

Helper granularity note: the paper's apps are built with msp430-gcc,
which inlines small static helpers; the mini-C sources here are written
with the post-inlining function structure (few functions, meaningful
call sites), which is what EILIDinst sees in both setups.
"""

from repro.apps.registry import APPS, AppSpec, get_app, app_names
from repro.apps.runtime import AppRun, run_app, build_app

__all__ = ["APPS", "AppSpec", "get_app", "app_names", "AppRun", "run_app", "build_app"]
