"""mini-C sources of the seven Table IV applications.

MMIO map (see ``repro.peripherals.ports``): GPIO 0x10/0x12/0x14,
timer 0x20/0x22/0x24, ADC 0x30/0x32, UART 0x40/0x42/0x44,
LCD 0x50/0x52/0x54, ultrasonic 0x60/0x62, DONE 0x70.

Each program runs a fixed scripted scenario and writes the DONE port;
the device cycle count at that write is the Table IV "running time".
"""

LIGHT_SENSOR_C = """
// Seeed LaunchPad LightSensor: threshold an ambient-light ADC channel
// and drive the indicator LED on change.
int reading;
int led;

int sample_light() {
    __mmio_write(0x0030, 8);              // start conversion, channel 0
    int v = __mmio_read(0x0032);
    if (v > 500) {
        if (led == 0) { led = 1; __mmio_write(0x0010, 1); }
    } else {
        if (led == 1) { led = 0; __mmio_write(0x0010, 0); }
    }
    return v;
}

void main() {
    led = 0;
    for (int i = 0; i < 40; i = i + 1) {
        reading = sample_light();
        int d = 12;                        // sensor settling delay
        while (d > 0) { d = d - 1; }
    }
    __mmio_write(0x0070, reading);
}
"""

ULTRASONIC_RANGER_C = """
// Seeed UltrasonicRanger: trigger a ping, time the echo pulse width,
// convert to centimetres, report over UART.
int distance;
int readings;

int wait_high() {
    int guard = 2000;
    while (guard > 0) {
        if (__mmio_read(0x0062) == 1) { return guard; }
        guard = guard - 1;
    }
    return 0;
}

int measure() {
    __mmio_write(0x0060, 1);               // trigger ping
    wait_high();
    int width = 0;
    while (__mmio_read(0x0062) == 1) { width = width + 1; }
    return width;
}

int to_centimeters(int width) {
    return (width * 10) / 58;
}

void main() {
    readings = 0;
    for (int i = 0; i < 60; i = i + 1) {
        int w = measure();
        distance = to_centimeters(w);
        __mmio_write(0x0040, distance);
        readings = readings + 1;
    }
    __mmio_write(0x0070, readings);
}
"""

FIRE_SENSOR_C = """
// Seeed FireSensor: fuse a flame channel and a temperature channel;
// dispatch the alarm state through a handler pointer (indirect call)
// while a timer interrupt keeps a watchdog tick count.
int flame;
int temperature;
int alarms;
int ticks;
int handler;

__interrupt(9) void tick_isr() {
    ticks = ticks + 1;
}

int read_channel(int ch) {
    __mmio_write(0x0030, 8 | ch);
    return __mmio_read(0x0032);
}

void alarm_on() {
    alarms = alarms + 1;
    __mmio_write(0x0010, 3);
}

void alarm_off() {
    __mmio_write(0x0010, 0);
}

void main() {
    ticks = 0;
    alarms = 0;
    handler = alarm_off;
    __mmio_write(0x0024, 3000);            // timer compare value
    __mmio_write(0x0020, 3);               // timer enable + irq
    __enable_interrupts();
    for (int i = 0; i < 150; i = i + 1) {
        flame = (flame + read_channel(1)) >> 1;      // smooth
        temperature = (temperature + read_channel(2)) >> 1;
        if (flame > 600 || temperature > 650) {
            handler = alarm_on;
        } else {
            handler = alarm_off;
        }
        handler();                          // forward edge under P3
        int d = 55;
        while (d > 0) { d = d - 1; }
    }
    __disable_interrupts();
    __mmio_write(0x0070, alarms);
}
"""

SYRINGE_PUMP_C = """
// OpenSyringePump: read 'f'/'r' + digit commands from UART and drive
// the stepper coils one pulse per step.
int steps_done;
int position;

int read_command() {
    while ((__mmio_read(0x0044) & 1) == 0) { }
    return __mmio_read(0x0042);
}

void coil_pulse(int dir) {
    __mmio_write(0x0010, 4 | dir);
    int d = 55;                             // coil energise time
    while (d > 0) { d = d - 1; }
    __mmio_write(0x0010, 0);
}

void step_motor(int dir) {
    coil_pulse(dir);
    steps_done = steps_done + 1;
    if (dir == 1) { position = position - 1; }
    else { position = position + 1; }
}

void main() {
    steps_done = 0;
    position = 0;
    for (int c = 0; c < 8; c = c + 1) {
        int cmd = read_command();
        int count = read_command() - '0';
        int dir = 0;
        if (cmd == 'r') { dir = 1; }
        for (int s = 0; s < count; s = s + 1) {
            step_motor(dir);
        }
    }
    __mmio_write(0x0070, steps_done);
}
"""

TEMP_SENSOR_C = """
// ticepd temp sensor: a timer interrupt paces the sampling; an 8-tap
// moving average smooths the channel before it is reported over UART.
int history[8];
int idx;
int average;
int ready;
int samples;

__interrupt(9) void sample_tick() {
    ready = 1;
}

int read_temp() {
    __mmio_write(0x0030, 8 | 3);
    return __mmio_read(0x0032);
}

void main() {
    idx = 0;
    samples = 0;
    ready = 0;
    average = 0;
    __mmio_write(0x0024, 2600);
    __mmio_write(0x0020, 3);
    __enable_interrupts();
    while (samples < 40) {
        while (ready == 0) { }
        ready = 0;
        history[idx] = read_temp();
        idx = (idx + 1) & 7;
        int sum = 0;
        for (int k = 0; k < 8; k = k + 1) { sum = sum + history[k]; }
        average = sum >> 3;
        __mmio_write(0x0040, average);
        int d = 45;                         // signal conditioning time
        while (d > 0) { d = d - 1; }
        samples = samples + 1;
    }
    __disable_interrupts();
    __mmio_write(0x0070, average);
}
"""

CHARLIEPLEXING_C = """
// ticepd charlieplexing: scan a 12-LED matrix; each LED needs its own
// pin-direction setup and a hold time, so the scan is delay-dominated.
int frames;
int pattern;

void light_led(int index) {
    int dir = 1 << (index & 7);
    __mmio_write(0x0014, dir);              // tri-state all but this pair
    __mmio_write(0x0010, pattern & dir);
    int d = 30;                              // LED hold time
    while (d > 0) { d = d - 1; }
    __mmio_write(0x0010, 0);
}

void main() {
    pattern = 0x2d;
    frames = 0;
    for (int f = 0; f < 25; f = f + 1) {
        for (int i = 0; i < 12; i = i + 1) {
            light_led(i);
        }
        pattern = ((pattern << 1) | (pattern >> 7)) & 255;
        frames = frames + 1;
    }
    __mmio_write(0x0070, frames);
}
"""

LCD_SENSOR_C = """
// ticepd LCD demo: HD44780-style init, then show a 3-digit sensor
// value each frame; every controller access polls the busy flag.
int shown;
int frames_done;

void lcd_cmd(int c) {
    while ((__mmio_read(0x0054) & 128) != 0) { }
    __mmio_write(0x0050, c);
}

void lcd_putc(int ch) {
    while ((__mmio_read(0x0054) & 128) != 0) { }
    __mmio_write(0x0052, ch);
}

void main() {
    lcd_cmd(0x38);                           // 8-bit, 2 lines
    lcd_cmd(0x0c);                           // display on
    lcd_cmd(0x01);                           // clear
    frames_done = 0;
    for (int f = 0; f < 40; f = f + 1) {
        __mmio_write(0x0030, 8 | 4);
        int v = __mmio_read(0x0032);
        lcd_cmd(0x80);                       // cursor home
        lcd_putc('0' + v / 100);
        lcd_putc('0' + (v / 10) % 10);
        lcd_putc('0' + v % 10);
        shown = v;
        int d = 220;                         // frame delay
        while (d > 0) { d = d - 1; }
        frames_done = frames_done + 1;
    }
    __mmio_write(0x0070, frames_done);
}
"""
