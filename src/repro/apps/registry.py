"""Application registry: specs, sources, stimulus factories."""

from dataclasses import dataclass
from typing import Callable, Dict

from repro.apps import sources
from repro.peripherals import Adc, AdcSchedule, Uart, Ultrasonic


@dataclass(frozen=True)
class AppSpec:
    """One Table IV application."""

    name: str  # registry key, e.g. "light_sensor"
    title: str  # paper row name, e.g. "Light Sensor"
    c_source: str
    make_peripherals: Callable[[], Dict[str, object]]
    max_cycles: int = 2_000_000
    description: str = ""
    uses_interrupts: bool = False
    uses_indirect_calls: bool = False


def _light_peripherals():
    # Hold each light level for 7 samples: the LED toggles a few times
    # over the 40-sample run.
    return {"adc": Adc(AdcSchedule({0: AdcSchedule.steps(7, [200, 700, 400, 900, 100, 650])}))}


def _ultrasonic_peripherals():
    # Echo widths (cycles) per measurement: four target distances.
    return {"ultrasonic": Ultrasonic(lambda index: 700 + (index % 4) * 250)}


def _fire_peripherals():
    return {
        "adc": Adc(
            AdcSchedule(
                {
                    1: AdcSchedule.steps(25, [80, 120, 700, 90, 820, 100]),  # flame
                    2: AdcSchedule.steps(20, [300, 350, 640, 320, 710, 330]),  # temp
                }
            )
        )
    }


def _syringe_peripherals():
    # Command stream: 'f'orward/'r'everse then a digit (step count).
    # All bytes are queued early so the pump drains them back-to-back
    # and the run is compute-bound, as on the real device.
    commands = b"f7r5f8f4r6f5r3f9"
    schedule = [(100 + 40 * i, byte) for i, byte in enumerate(commands)]
    return {"uart": Uart(rx_schedule=schedule)}


def _temp_peripherals():
    return {"adc": Adc(AdcSchedule({3: AdcSchedule.ramp(40, low=260, high=420)}))}


def _charlie_peripherals():
    return {}


def _lcd_peripherals():
    return {"adc": Adc(AdcSchedule({4: AdcSchedule.steps(10, [123, 405, 87, 961])}))}


APPS: Dict[str, AppSpec] = {}


def _register(spec: AppSpec):
    APPS[spec.name] = spec
    return spec


LIGHT_SENSOR = _register(
    AppSpec(
        name="light_sensor",
        title="Light Sensor",
        c_source=sources.LIGHT_SENSOR_C,
        make_peripherals=_light_peripherals,
        description="Seeed LaunchPad light sensor: ADC threshold drives an LED.",
    )
)

ULTRASONIC_RANGER = _register(
    AppSpec(
        name="ultrasonic_ranger",
        title="Ultrasonic Ranger",
        c_source=sources.ULTRASONIC_RANGER_C,
        make_peripherals=_ultrasonic_peripherals,
        description="Seeed ultrasonic ranger: trigger/echo pulse-width distance.",
    )
)

FIRE_SENSOR = _register(
    AppSpec(
        name="fire_sensor",
        title="Fire Sensor",
        c_source=sources.FIRE_SENSOR_C,
        make_peripherals=_fire_peripherals,
        uses_interrupts=True,
        uses_indirect_calls=True,
        description="Seeed fire sensor: flame+temperature fusion with alarm handler dispatch.",
    )
)

SYRINGE_PUMP = _register(
    AppSpec(
        name="syringe_pump",
        title="Syringe Pump",
        c_source=sources.SYRINGE_PUMP_C,
        make_peripherals=_syringe_peripherals,
        uses_indirect_calls=True,
        description="OpenSyringePump: UART command stream drives a stepper motor.",
    )
)

TEMP_SENSOR = _register(
    AppSpec(
        name="temp_sensor",
        title="Temp Sensor",
        c_source=sources.TEMP_SENSOR_C,
        make_peripherals=_temp_peripherals,
        uses_interrupts=True,
        description="ticepd temperature sensor: timer-paced sampling, moving average, UART.",
    )
)

CHARLIEPLEXING = _register(
    AppSpec(
        name="charlieplexing",
        title="Charlieplexing",
        c_source=sources.CHARLIEPLEXING_C,
        make_peripherals=_charlie_peripherals,
        description="ticepd charlieplexing: time-multiplexed LED matrix scan.",
    )
)

LCD_SENSOR = _register(
    AppSpec(
        name="lcd_sensor",
        title="Lcd Sensor",
        c_source=sources.LCD_SENSOR_C,
        make_peripherals=_lcd_peripherals,
        description="ticepd LCD demo: HD44780 init + sensor readout with busy polling.",
    )
)

# Paper Table IV row order.
TABLE_IV_ORDER = (
    "light_sensor",
    "ultrasonic_ranger",
    "fire_sensor",
    "syringe_pump",
    "temp_sensor",
    "charlieplexing",
    "lcd_sensor",
)


def get_app(name: str) -> AppSpec:
    return APPS[name]


def app_names():
    return list(TABLE_IV_ORDER)
