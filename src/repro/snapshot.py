"""Portable device snapshots: a versioned, JSON-safe state codec.

A :class:`DeviceSnapshot` captures *everything mutable* about a running
:class:`repro.device.Device` -- CPU registers, the memory image as a
delta against the loaded firmware, interrupt lines, every peripheral's
latches and schedules, the branch-trace ring, the monitor's update
session, the update engine's monotonic version, and the device event
log -- in a plain dict of JSON types.  Restoring a snapshot into a
freshly built device of the same program/security produces a device
that executes **bit-identically** to the original (the lockstep
differential tests in ``tests/test_snapshot.py`` are the contract).

Two consumers:

* the fleet layer ships snapshots through ``campaign.py``'s
  process-shard wire format, so pool workers resurrect *arbitrary*
  (including adversarially mutated) device state instead of rebuilding
  honest devices from registry records;
* the fault-injection campaigns (:mod:`repro.faults`) snapshot an
  honest device once, then restore+mutate per fault site.

Versioning: every wire document carries ``{"codec": WIRE_VERSION}``.
The fleet record codec (:mod:`repro.fleet.store`) shares the same
constant, so a rolling upgrade where parent and workers disagree fails
loudly (:class:`SnapshotError` / ``FleetError``) instead of
misinterpreting fields.

Restore and the decode cache: restoring a memory image is an arbitrary
memory mutation, so :meth:`repro.memory.bus.Bus.restore_memory` drops
the *entire* decoded-instruction cache -- the same contract as
self-modifying code, just wholesale (see :mod:`repro.cpu.core`).
"""

import json
from typing import Any, Dict, Optional

from repro.errors import ReproError

# Version of both the snapshot codec and the fleet process-shard record
# codec (repro.fleet.store imports this).  Bump on any incompatible
# change to either wire form.
WIRE_VERSION = 1

# Memory deltas are emitted per fixed-size page: cheap to diff with
# slice compares, compact for the near-empty deltas of idle devices.
PAGE_SIZE = 256


class SnapshotError(ReproError):
    """Raised for malformed, mismatched, or wrong-version snapshots."""


def check_wire_version(doc: Dict[str, Any], what: str = "snapshot") -> None:
    """Reject documents from a different codec generation.

    A missing field is rejected too: every writer since the field was
    introduced stamps it, so absence means "not a {what} document".
    """
    if not isinstance(doc, dict):
        raise SnapshotError(f"{what} must be a dict, got {type(doc).__name__}")
    got = doc.get("codec")
    if got != WIRE_VERSION:
        raise SnapshotError(
            f"{what} codec version mismatch: expected {WIRE_VERSION}, "
            f"got {got!r} (parent and worker builds out of sync?)")


def memory_delta(mem, baseline) -> list:
    """Pages of *mem* that differ from *baseline*, as ``[addr, hex]``.

    The common case -- snapshotting right after build, or a firmware
    that never self-modifies -- compares whole pages at C speed and
    emits nothing for untouched ones.
    """
    if bytes(mem) == baseline:
        return []
    delta = []
    view = memoryview(mem)
    base = memoryview(baseline)
    for start in range(0, len(mem), PAGE_SIZE):
        page = view[start:start + PAGE_SIZE]
        if page != base[start:start + PAGE_SIZE]:
            delta.append([start, bytes(page).hex()])
    return delta


def apply_memory_delta(mem, baseline, delta) -> None:
    """Rebuild *mem* in place: baseline image plus differing pages."""
    mem[:] = baseline
    for entry in delta:
        try:
            start, data = entry
            payload = bytes.fromhex(data)
        except (TypeError, ValueError) as error:
            raise SnapshotError(f"malformed memory delta entry: {error}")
        if not 0 <= start <= len(mem) - len(payload):
            raise SnapshotError(
                f"memory delta page at 0x{start:04x} outside address space")
        mem[start:start + len(payload)] = payload


class DeviceSnapshot:
    """A captured device state with a dict/JSON wire form.

    Thin immutable wrapper over the wire dict; :meth:`from_dict` /
    :meth:`from_json` validate the codec version at the boundary so a
    mismatched document never reaches ``Device.restore``.
    """

    __slots__ = ("_doc",)

    def __init__(self, doc: Dict[str, Any]):
        check_wire_version(doc, "device snapshot")
        self._doc = doc

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return self._doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "DeviceSnapshot":
        return cls(doc)

    def to_json(self) -> str:
        return json.dumps(self._doc, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeviceSnapshot":
        try:
            doc = json.loads(text)
        except ValueError as error:
            raise SnapshotError(f"snapshot is not valid JSON: {error}")
        return cls(doc)

    # -- accessors ---------------------------------------------------------

    @property
    def program_name(self) -> Optional[str]:
        return self._doc.get("program")

    @property
    def security(self) -> Optional[str]:
        return self._doc.get("security")

    @property
    def cycle(self) -> int:
        return self._doc.get("cycle", 0)

    def __repr__(self):
        return (f"DeviceSnapshot(program={self.program_name!r}, "
                f"security={self.security!r}, cycle={self.cycle})")
