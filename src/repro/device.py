"""The assembled device: CPU + memory + peripherals + hardware monitor.

Three security levels, matching the attack matrix in DESIGN.md:

* ``"none"``  -- bare MCU, no monitor (the victim baseline);
* ``"casu"``  -- CASU active RoT (software immutability, no CFI);
* ``"eilid"`` -- CASU plus the EILID extension (secure shadow-stack
  bank, CFI violation port).

A monitor violation rolls back the violating step's memory writes and
register changes (hardware resets preempt commit), records the event,
and resets the MCU -- the paper's "detects control-flow violation and
triggers a reset".
"""

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.casu.monitor import (
    HardwareMonitor,
    MonitorPolicy,
    Violation,
    ViolationReason,
)
from repro.cfg.trace import BranchTraceRecorder, TraceSnapshot, empty_snapshot
from repro.snapshot import (
    WIRE_VERSION,
    DeviceSnapshot,
    SnapshotError,
    memory_delta,
)
from repro.casu.update import (
    STAGING_HEADER_WORDS,
    UpdateEngine,
    UpdateKey,
    UpdateResult,
    UpdateStatus,
)
from repro.cpu import Cpu, InterruptController
from repro.cpu.core import StepKind
from repro.eilid.trusted_sw import AttestationReport, TrustedSoftware
from repro.errors import UpdateError
from repro.memory.bus import Bus
from repro.obs.metrics import METRICS
from repro.peripherals import (
    Adc,
    Gpio,
    HarnessPorts,
    Lcd,
    Timer,
    Uart,
    Ultrasonic,
)
from repro.peripherals.base import Peripheral

SECURITY_LEVELS = ("none", "casu", "eilid")


@dataclass
class DeviceEvent:
    kind: str  # "violation" | "reset"
    cycle: int
    violation: Optional[Violation] = None

    def __str__(self):
        body = f": {self.violation}" if self.violation else ""
        return f"[{self.cycle}] {self.kind}{body}"


def _event_to_doc(event: DeviceEvent) -> dict:
    doc = {"kind": event.kind, "cycle": event.cycle}
    if event.violation is not None:
        v = event.violation
        doc["violation"] = {"reason": v.reason.value, "pc": v.pc,
                            "addr": v.addr, "detail": v.detail}
    return doc


def _event_from_doc(doc: dict) -> DeviceEvent:
    violation = None
    raw = doc.get("violation")
    if raw is not None:
        violation = Violation(reason=ViolationReason(raw["reason"]),
                              pc=raw["pc"], addr=raw["addr"],
                              detail=raw["detail"])
    return DeviceEvent(kind=doc["kind"], cycle=doc["cycle"],
                       violation=violation)


@dataclass
class RunResult:
    cycles: int
    instructions: int
    steps: int
    done: bool
    done_value: Optional[int]
    violations: List[Violation]
    reset_count: int

    @property
    def run_time_us(self):
        """Run time at the paper's 100 MHz clock."""
        return self.cycles / 100.0

    @property
    def hijacked(self):
        """True when the run ended neither cleanly nor with a reset."""
        return not self.done and not self.violations


class Device:
    # Bounds for the unbatched evidence logs: million-step fleet sims
    # must not balloon memory, so both the event log and the branch
    # trace are rings with explicit drop counters.
    DEFAULT_MAX_EVENTS = 1024
    DEFAULT_TRACE_CAPACITY = 4096

    def __init__(self, program, security="none", peripherals=None,
                 update_key: Optional[UpdateKey] = None,
                 max_events: Optional[int] = None,
                 trace_capacity: Optional[int] = None,
                 decode_cache: Optional[bool] = None):
        if security not in SECURITY_LEVELS:
            raise ValueError(f"security must be one of {SECURITY_LEVELS}")
        self.program = program
        self.security = security
        self.layout = program.layout
        self.bus = Bus(self.layout)
        self.ic = InterruptController()
        self.cpu = Cpu(self.bus, self.ic, decode_cache=decode_cache)

        if peripherals is None:
            peripherals = {}
        self.peripherals: Dict[str, object] = {
            "gpio": peripherals.get("gpio", Gpio()),
            "timer": peripherals.get("timer", Timer()),
            "adc": peripherals.get("adc", Adc()),
            "uart": peripherals.get("uart", Uart()),
            "lcd": peripherals.get("lcd", Lcd()),
            "ultrasonic": peripherals.get("ultrasonic", Ultrasonic()),
            "harness": peripherals.get("harness", HarnessPorts()),
        }
        for peripheral in self.peripherals.values():
            peripheral.attach(self.bus, self.ic)
        # Hot-loop plumbing, precomputed once: peripherals that override
        # tick() advance per step; the rest only need ``now`` kept in
        # sync (base tick just accumulates cycles, and device.cycle and
        # peripheral.now advance in lockstep by construction).  The flat
        # list of log-list references replaces per-step snapshot dicts.
        base_tick = Peripheral.tick
        self._ticking = tuple(p for p in self.peripherals.values()
                              if type(p).tick is not base_tick)
        self._passive = tuple(p for p in self.peripherals.values()
                              if type(p).tick is base_tick)
        # Peripherals that override the snapshot/rollback API carry
        # extra voidable state (e.g. the harness DONE latch) and keep
        # going through their own methods; everything else rolls back
        # via plain list truncation.
        self._custom_rollback = tuple(
            p for p in self.peripherals.values()
            if type(p).snapshot_logs is not Peripheral.snapshot_logs
            or type(p).rollback_logs is not Peripheral.rollback_logs)
        self._rollback_lists = tuple(
            log for p in self.peripherals.values()
            if p not in self._custom_rollback
            for log in [p.events] + [getattr(p, a) for a in p._log_attrs])
        self._harness = self.peripherals["harness"]

        self.monitor: Optional[HardwareMonitor] = None
        if security != "none":
            policy = MonitorPolicy.eilid() if security == "eilid" else MonitorPolicy.casu()
            rom_config = TrustedSoftware.rom_config_from_symbols(program.symbols)
            self.monitor = HardwareMonitor(self.layout, policy, rom_config)
            if policy.rom_atomicity:
                self.cpu.irq_deferred_at = self.layout.in_secure_rom

        self.update_engine = UpdateEngine(update_key or UpdateKey.derive(program.name))
        self.max_events = self.DEFAULT_MAX_EVENTS if max_events is None else max_events
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.events = deque(maxlen=self.max_events)
        self.events_dropped = 0
        # Cumulative counters survive event-ring eviction, so fleet
        # telemetry keeps exact totals on long-running devices.
        self.violation_count = 0
        self.violation_totals: Dict[str, int] = {}
        # trace_capacity=0 disables recording entirely (leaves the CPU
        # hot path without the per-step observe call); None = default.
        if trace_capacity == 0:
            self.trace = None
        else:
            self.trace = BranchTraceRecorder(
                capacity=trace_capacity or self.DEFAULT_TRACE_CAPACITY)
            self.cpu.trace_sink = self.trace
        self.cycle = 0
        self.reset_count = 0

        for addr, data in program.segments():
            self.bus.load_bytes(addr, data)
        # Reference image for snapshot memory deltas: the loaded
        # firmware before any execution (reset reads, never writes).
        self._baseline = bytes(self.bus.mem)
        self.cpu.reset()

    # ---- accessors -----------------------------------------------------------

    @property
    def harness(self) -> HarnessPorts:
        return self._harness

    def symbol(self, name):
        return self.program.symbols[name]

    def peek_word(self, addr):
        return self.bus.peek_word(addr)

    @property
    def violations(self):
        return [e.violation for e in self.events if e.kind == "violation"]

    def output_events(self):
        """Observable I/O trace across all peripherals, in time order.

        The harness DONE write is excluded (it is the run terminator,
        not application output).  Used for original-vs-EILID
        behavioural equivalence.
        """
        events = []
        for peripheral in self.peripherals.values():
            events.extend(peripheral.events)
        events.sort(key=lambda e: (e.cycle, e.port))
        return [(e.port, e.value) for e in events if e.port != "harness.done"]

    def _log_event(self, event: DeviceEvent):
        """Append to the bounded event ring, counting evictions."""
        if len(self.events) == self.max_events:
            self.events_dropped += 1
        self.events.append(event)

    def trace_snapshot(self) -> TraceSnapshot:
        """The branch-trace evidence attached to attestation replies."""
        if self.trace is None:
            return empty_snapshot()
        return self.trace.snapshot()

    def firmware_measurement(self) -> str:
        """SHA-256 over PMEM + IVT, the device's software identity."""
        start = self.layout.pmem.start
        end = self.layout.ivt.end
        return hashlib.sha256(bytes(self.bus.mem[start:end + 1])).hexdigest()

    def attestation_report(self) -> AttestationReport:
        """Snapshot the evidence a remote verifier attests against.

        Models the RoT-side measurement (see DESIGN.md's substitution
        note: crypto runs natively, the guarded state it measures is
        the simulated one).  Consumed by :mod:`repro.fleet.protocol`.
        """
        # The RoT reads the trace hardware directly -- NOT through the
        # overridable trace_snapshot() accessor the (untrusted) agent
        # uses -- so the MAC'd counters stay honest even when the OS
        # ships a doctored window.
        snapshot = (self.trace.snapshot() if self.trace is not None
                    else empty_snapshot())
        return AttestationReport(
            firmware_hash=self.firmware_measurement(),
            firmware_version=self.update_engine.current_version,
            reset_count=self.reset_count,
            violation_reasons=tuple(v.reason.value for v in self.violations),
            cycle=self.cycle,
            violation_count=self.violation_count,
            violation_totals=tuple(
                f"{reason}={count}"
                for reason, count in sorted(self.violation_totals.items())),
            trace_digest=snapshot.digest_hex,
            trace_edges=snapshot.total,
            trace_dropped=snapshot.dropped,
        )

    # ---- snapshot/restore --------------------------------------------------------

    def snapshot(self) -> "DeviceSnapshot":
        """Capture the complete mutable device state (see repro.snapshot).

        Must be called between steps (the per-step bus trace is drained
        into each StepRecord, so there is no in-flight transaction to
        lose).  The result restores into any device built from the same
        program/security/peripheral configuration.
        """
        doc = {
            "codec": WIRE_VERSION,
            "program": self.program.name,
            "security": self.security,
            "cycle": self.cycle,
            "reset_count": self.reset_count,
            "events": [_event_to_doc(e) for e in self.events],
            "events_dropped": self.events_dropped,
            "violation_count": self.violation_count,
            "violation_totals": dict(self.violation_totals),
            "cpu": self.cpu.snapshot_state(),
            "memory": memory_delta(self.bus.mem, self._baseline),
            "interrupts": self.ic.snapshot_state(),
            "peripherals": {name: p.snapshot_state()
                            for name, p in self.peripherals.items()},
            "trace": (None if self.trace is None
                      else self.trace.snapshot_state()),
            "monitor": (None if self.monitor is None
                        else self.monitor.snapshot_state()),
            "update_engine": self.update_engine.snapshot_state(),
        }
        return DeviceSnapshot(doc)

    def restore(self, snapshot) -> None:
        """Adopt a snapshot's state, bit-identically.

        *snapshot* is a :class:`DeviceSnapshot` or its dict wire form.
        The device must have been built from the same program and
        security profile; a mismatch raises :class:`SnapshotError`
        rather than silently producing a franken-device.  Restoring the
        memory image drops the whole decode cache (see
        :meth:`repro.memory.bus.Bus.restore_memory`), so code mutated
        before the snapshot -- self-modifying or attacker-injected --
        always re-decodes on the restored device.
        """
        if isinstance(snapshot, DeviceSnapshot):
            doc = snapshot.to_dict()
        else:
            doc = DeviceSnapshot.from_dict(snapshot).to_dict()
        if doc.get("program") != self.program.name:
            raise SnapshotError(
                f"snapshot is for program {doc.get('program')!r}, "
                f"device runs {self.program.name!r}")
        if doc.get("security") != self.security:
            raise SnapshotError(
                f"snapshot is for security {doc.get('security')!r}, "
                f"device is {self.security!r}")
        if (doc["trace"] is None) != (self.trace is None):
            raise SnapshotError(
                "snapshot and device disagree on trace recording")
        try:
            self.bus.restore_memory(self._baseline, doc["memory"])
            self.cpu.restore_state(doc["cpu"])
            self.ic.restore_state(doc["interrupts"])
            for name, peripheral in self.peripherals.items():
                peripheral.restore_state(doc["peripherals"][name])
            if self.trace is not None:
                self.trace.restore_state(doc["trace"])
            if self.monitor is not None and doc["monitor"] is not None:
                self.monitor.restore_state(doc["monitor"])
            self.update_engine.restore_state(doc["update_engine"])
            self.cycle = doc["cycle"]
            self.reset_count = doc["reset_count"]
            self.events = deque((_event_from_doc(e) for e in doc["events"]),
                                maxlen=self.max_events)
            self.events_dropped = doc["events_dropped"]
            self.violation_count = doc["violation_count"]
            self.violation_totals = dict(doc["violation_totals"])
        except (KeyError, ValueError, TypeError) as error:
            raise SnapshotError(f"malformed device snapshot: {error!r}")
        self.bus.current_pc = self.cpu.pc
        self.bus.trace.clear()

    # ---- stepping ----------------------------------------------------------------

    def step(self):
        """One monitored step. Returns (record, violation_or_None)."""
        monitor = self.monitor
        cpu = self.cpu
        if monitor is not None:
            regs_before = cpu.regs.copy()
            log_marks = [len(log) for log in self._rollback_lists]
            custom_marks = [p.snapshot_logs() for p in self._custom_rollback]
        record = cpu.step()
        cycles = record.cycles
        self.cycle += cycles
        for peripheral in self._ticking:
            peripheral.tick(cycles)
        now = self.cycle
        for peripheral in self._passive:
            peripheral.now = now

        violation = None
        if monitor is not None:
            violation = monitor.observe(record)
        elif record.kind is StepKind.ILLEGAL:
            # Without a monitor an illegal opcode just spins the PC past
            # the bad word, like a real core executing garbage.
            cpu.pc = record.pc + 2

        if violation is not None:
            # Hardware semantics: the violating cycle never commits --
            # memory writes, register changes and peripheral effects of
            # this step are all voided before the reset.
            self.bus.rollback_writes(record.accesses)
            cpu.regs = regs_before
            for log, mark in zip(self._rollback_lists, log_marks):
                del log[mark:]
            for peripheral, mark in zip(self._custom_rollback, custom_marks):
                peripheral.rollback_logs(mark)
            self.violation_count += 1
            reason = violation.reason.value
            self.violation_totals[reason] = self.violation_totals.get(reason, 0) + 1
            self._log_event(DeviceEvent("violation", self.cycle, violation))
            self.hard_reset()
        return record, violation

    def hard_reset(self):
        self.reset_count += 1
        self._log_event(DeviceEvent("reset", self.cycle))
        self.cpu.reset()
        self.ic.clear_all()
        if self.monitor is not None:
            self.monitor.reset()
        for peripheral in self.peripherals.values():
            peripheral.reset()

    def run(self, max_cycles=2_000_000, stop_on_done=True, stop_on_violation=True,
            max_steps=None, break_at=None, observer=None):
        """Run until DONE, a violation (if requested), a breakpoint in
        *break_at* (a set of PC values), or the budget ends.

        *observer*, if given, is called with every
        ``(StepRecord, violation_or_None)`` -- the hook the trace
        oracles in :mod:`repro.verification` attach to.
        """
        return self._run_loop(max_cycles, stop_on_done, stop_on_violation,
                              max_steps, break_at, observer)

    def run_steps(self, n, max_cycles=None, stop_on_done=True,
                  stop_on_violation=True):
        """Batched inner loop: execute up to *n* steps in one call.

        The fleet waves (:mod:`repro.fleet.simulation`) and trace
        capture (:mod:`repro.cfg.trace`) drive millions of device steps;
        this entry point amortizes the per-step Python overhead (no
        observer or breakpoint hooks, attribute lookups hoisted) while
        keeping the exact monitored-step semantics of :meth:`step`.

        Instrumentation lives at this batch boundary -- one enabled
        check per call, never inside the step loop -- so the disabled
        path costs a single attribute lookup and the bench_micro
        throughput floors hold either way.
        """
        if not METRICS.enabled:
            return self._run_loop(max_cycles, stop_on_done,
                                  stop_on_violation, n, None, None)
        with METRICS.span("interpreter.batch"):
            result = self._run_loop(max_cycles, stop_on_done,
                                    stop_on_violation, n, None, None)
        METRICS.inc("interpreter.batches")
        METRICS.inc("interpreter.steps", result.steps)
        return result

    def _run_loop(self, max_cycles, stop_on_done, stop_on_violation,
                  max_steps, break_at, observer):
        start_cycle = self.cycle
        start_insns = self.cpu.instruction_count
        budget = float("inf") if max_cycles is None else max_cycles
        limit = float("inf") if max_steps is None else max_steps
        steps = 0
        violations: List[Violation] = []
        step = self.step
        harness = self._harness
        cpu = self.cpu
        while self.cycle - start_cycle < budget and steps < limit:
            record, violation = step()
            if observer is not None:
                observer(record, violation)
            steps += 1
            if violation is not None:
                violations.append(violation)
                if stop_on_violation:
                    break
            if stop_on_done and harness.done:
                break
            if break_at is not None and cpu.pc in break_at:
                break
        return RunResult(
            cycles=self.cycle - start_cycle,
            instructions=cpu.instruction_count - start_insns,
            steps=steps,
            done=harness.done,
            done_value=harness.done_value,
            violations=violations,
            reset_count=self.reset_count,
        )

    # ---- ROM routine invocation (used by the update flow and tests) ---------------

    def call_routine(self, symbol, regs=None, max_steps=20_000):
        """Run a ROM routine to completion on the simulated CPU.

        Pushes ``__halt`` as the return address, jumps to *symbol*, and
        steps until the routine returns (or a violation resets).
        Returns the violation list collected on the way.
        """
        sentinel = self.symbol("__halt")
        self.cpu.set_reg(1, self.layout.stack_top)
        for reg, value in (regs or {}).items():
            self.cpu.set_reg(reg, value)
        self.cpu._push(sentinel)
        self.cpu.pc = self.symbol(symbol)
        violations = []
        for _ in range(max_steps):
            _record, violation = self.step()
            if violation is not None:
                violations.append(violation)
                break
            if self.cpu.pc == sentinel:
                break
        return violations

    # ---- CASU secure update ------------------------------------------------------------

    def apply_update(self, package) -> UpdateResult:
        """Authenticated update: verify, stage, ROM-copy into PMEM.

        The MAC/version check models the ROM crypto (see DESIGN.md);
        the copy runs on the CPU from the ROM routine with the
        monitor's update session open, so the PMEM guard is exercised
        for real.
        """
        result = self.update_engine.verify(package)
        if not result.ok:
            return result

        staging = self.layout.dmem.start + 2 * STAGING_HEADER_WORDS
        if staging + len(package.payload) > self.layout.dmem.end + 1:
            raise UpdateError("payload does not fit in the staging area")
        self.bus.load_bytes(staging, package.payload)  # models network receive

        if self.monitor is not None:
            self.monitor.open_update_session()
        try:
            violations = self.call_routine(
                "S_CASU_update_copy",
                regs={15: staging, 14: package.target, 13: len(package.payload) // 2},
            )
        finally:
            if self.monitor is not None:
                self.monitor.close_update_session()
        if violations:
            return UpdateResult(UpdateStatus.COPY_FAILED, str(violations[0]))
        self.update_engine.accept(package)
        return result


# The complete knob set *limits* may carry; anything else is a typo
# (historically e.g. ``trace_capcity=`` was swallowed silently).
DEVICE_KNOBS = ("max_events", "trace_capacity", "decode_cache")


def build_device(program, security="none", peripherals=None, update_key=None,
                 **limits) -> Device:
    """Factory mirroring the three rows of the DESIGN.md attack matrix.

    *limits* forwards the evidence bounds (``max_events``,
    ``trace_capacity``) and the ``decode_cache`` interpreter knob to the
    device.

    .. deprecated::
        Kept as a thin shim for existing code and tests.  New
        workloads should describe the device declaratively and go
        through :mod:`repro.api` (``ScenarioSpec`` -> ``Session``),
        which routes here.
    """
    unknown = sorted(set(limits) - set(DEVICE_KNOBS))
    if unknown:
        raise TypeError(
            f"build_device() got unknown option(s) "
            f"{', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(DEVICE_KNOBS)}")
    return Device(program, security=security, peripherals=peripherals,
                  update_key=update_key, **limits)
