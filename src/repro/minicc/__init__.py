"""mini-C: a small C-subset compiler targeting the MSP430 dialect.

The paper's applications are C programs compiled with msp430-gcc and
then instrumented at the assembly level (Fig. 2: ``app.c -> app_N.s``).
This package reproduces that flow end-to-end in the repo: the seven
Table IV applications are written in mini-C, compiled to ``.s`` by this
compiler, and instrumented by EILIDinst exactly as the paper describes.

Language subset: 16-bit ``int`` (and ``void`` returns), global scalars
and word arrays, functions with up to three word parameters, ``if`` /
``else`` / ``while`` / ``for`` / ``return``, full expression grammar
(including ``* / %`` compiled to inline shift-add loops -- no runtime
library calls, so every ``call`` in the output belongs to the
application and is visible to the instrumenter), function pointers
(taking a function's value and calling through a variable compiles to
an indirect ``call rN``, the paper's Fig. 8 case), interrupt handlers
via ``__interrupt(N)``, and MMIO intrinsics:

* ``__mmio_read(ADDR)`` / ``__mmio_write(ADDR, V)`` -- constant address
* ``__enable_interrupts()`` / ``__disable_interrupts()`` / ``__nop()``

Calling convention (internal, stack-machine): args in r15/r14/r13,
return in r15, frame pointer r10, scratch r11-r15.  Registers r4-r7 are
never touched: they are reserved for EILID (paper Table III).
"""

from repro.minicc.compiler import compile_c

__all__ = ["compile_c"]
