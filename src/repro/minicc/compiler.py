"""mini-C compiler driver."""

from repro.minicc.codegen import CodeGenerator
from repro.minicc.parser import parse_c
from repro.minicc.sema import analyse


def compile_c(source, module_name="app"):
    """Compile mini-C *source* text to MSP430 assembly text."""
    program = parse_c(source)
    env = analyse(program)
    return CodeGenerator(program, env, module_name).generate()
