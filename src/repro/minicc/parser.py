"""mini-C recursive-descent parser."""

from repro.minicc.lexer import CCompileError, tokenize
from repro.minicc import nodes as N

# Binary operator precedence (low to high).
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # ---- token helpers -----------------------------------------------------

    @property
    def tok(self):
        return self.tokens[self.pos]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind, text=None):
        tok = self.tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise CCompileError(f"expected {want!r}, got {self.tok.text!r}", self.tok.line)
        return tok

    # ---- program ---------------------------------------------------------------

    def parse_program(self):
        program = N.Program()
        while self.tok.kind != "eof":
            self._parse_top_level(program)
        return program

    def _parse_top_level(self, program):
        isr_vector = None
        if self.accept("ident", "__interrupt"):
            self.expect("op", "(")
            vec = self.expect("num")
            self.expect("op", ")")
            isr_vector = vec.value

        if self.accept("keyword", "void"):
            returns_value = False
        else:
            self.expect("keyword", "int")
            returns_value = True

        name = self.expect("ident")

        if self.tok.text == "(":
            program.functions.append(
                self._parse_function(name.text, returns_value, isr_vector, name.line)
            )
            return

        if isr_vector is not None:
            raise CCompileError("__interrupt applies to functions only", name.line)
        if not returns_value:
            raise CCompileError("variables must be int", name.line)
        program.globals_.append(self._parse_global(name))

    def _parse_global(self, name):
        array_size = None
        init = None
        if self.accept("op", "["):
            size = self.expect("num")
            self.expect("op", "]")
            array_size = size.value
            if array_size <= 0:
                raise CCompileError("array size must be positive", name.line)
        if self.accept("op", "="):
            if array_size is None:
                init = [self._parse_const_expr()]
            else:
                self.expect("op", "{")
                init = [self._parse_const_expr()]
                while self.accept("op", ","):
                    init.append(self._parse_const_expr())
                self.expect("op", "}")
                if len(init) > array_size:
                    raise CCompileError("too many initialisers", name.line)
        self.expect("op", ";")
        return N.GlobalVar(name.text, array_size, init, name.line)

    def _parse_const_expr(self):
        expr = self.parse_expression()
        value = _fold(expr)
        if value is None:
            raise CCompileError("initialiser must be a constant expression", self.tok.line)
        return value & 0xFFFF

    def _parse_function(self, name, returns_value, isr_vector, line):
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            if self.accept("keyword", "void"):
                self.expect("op", ")")
            else:
                while True:
                    self.expect("keyword", "int")
                    pname = self.expect("ident")
                    params.append(N.Param(pname.text, pname.line))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
        if len(params) > 3:
            raise CCompileError("at most 3 parameters supported", line)
        if isr_vector is not None and (params or returns_value):
            raise CCompileError("interrupt handlers must be `void f()`", line)
        body = self.parse_block()
        return N.FuncDef(name, params, body, returns_value, isr_vector, line)

    # ---- statements ----------------------------------------------------------------

    def parse_block(self):
        self.expect("op", "{")
        block = N.Block()
        while not self.accept("op", "}"):
            block.body.append(self.parse_statement())
        return block

    def parse_statement(self):
        tok = self.tok

        if tok.text == "{":
            return self.parse_block()

        if self.accept("keyword", "int"):
            name = self.expect("ident")
            init = None
            if self.accept("op", "="):
                init = self.parse_expression()
            self.expect("op", ";")
            return N.LocalDecl(name.text, init, name.line)

        if self.accept("keyword", "if"):
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            then = self._statement_as_block()
            els = None
            if self.accept("keyword", "else"):
                els = self._statement_as_block()
            return N.If(cond, then, els, tok.line)

        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            return N.While(cond, self._statement_as_block(), tok.line)

        if self.accept("keyword", "for"):
            self.expect("op", "(")
            if self.tok.text == ";":
                init = None
            elif self.accept("keyword", "int"):
                name = self.expect("ident")
                value = None
                if self.accept("op", "="):
                    value = self.parse_expression()
                init = N.LocalDecl(name.text, value, name.line)
            else:
                init = self._simple_statement()
            self.expect("op", ";")
            cond = None if self.tok.text == ";" else self.parse_expression()
            self.expect("op", ";")
            step = None if self.tok.text == ")" else self._simple_statement()
            self.expect("op", ")")
            return N.For(init, cond, step, self._statement_as_block(), tok.line)

        if self.accept("keyword", "return"):
            value = None
            if self.tok.text != ";":
                value = self.parse_expression()
            self.expect("op", ";")
            return N.Return(value, tok.line)

        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return N.Break(tok.line)

        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return N.Continue(tok.line)

        stmt = self._simple_statement()
        self.expect("op", ";")
        return stmt

    def _statement_as_block(self):
        stmt = self.parse_statement()
        if isinstance(stmt, N.Block):
            return stmt
        return N.Block([stmt])

    def _simple_statement(self):
        """Assignment or expression statement (no trailing ';')."""
        start = self.pos
        line = self.tok.line
        if self.tok.kind == "ident":
            name = self.advance()
            target = None
            if self.tok.text == "=":
                target = N.Var(name.text, name.line)
            elif self.tok.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                if self.tok.text == "=":
                    target = N.Index(name.text, index, name.line)
            if target is not None and self.accept("op", "="):
                value = self.parse_expression()
                return N.Assign(target, value, line)
            self.pos = start  # not an assignment: re-parse as expression
        expr = self.parse_expression()
        return N.ExprStmt(expr, line)

    # ---- expressions ------------------------------------------------------------------

    def parse_expression(self, level=0):
        if level == len(_PRECEDENCE):
            return self._unary()
        ops = _PRECEDENCE[level]
        left = self.parse_expression(level + 1)
        while self.tok.kind == "op" and self.tok.text in ops:
            op = self.advance()
            right = self.parse_expression(level + 1)
            left = N.Binary(op.text, left, right, op.line)
        return left

    def _unary(self):
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "~", "!"):
            self.advance()
            return N.Unary(tok.text, self._unary(), tok.line)
        if tok.kind == "op" and tok.text == "&":
            # Address-of a function: `&blink` is the same as `blink`.
            self.advance()
            name = self.expect("ident")
            return N.Var(name.text, name.line)
        return self._postfix()

    def _postfix(self):
        tok = self.tok
        if tok.kind == "num":
            self.advance()
            return N.Num(tok.value, tok.line)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if tok.kind == "ident":
            name = self.advance()
            if self.accept("op", "("):
                args = []
                if not self.accept("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                    self.expect("op", ")")
                return N.Call(name.text, args, name.line)
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return N.Index(name.text, index, name.line)
            return N.Var(name.text, name.line)
        raise CCompileError(f"unexpected token {tok.text!r}", tok.line)


def _fold(expr):
    """Constant-fold an expression; returns int or None."""
    if isinstance(expr, N.Num):
        return expr.value
    if isinstance(expr, N.Unary):
        value = _fold(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        return 0 if value else 1
    if isinstance(expr, N.Binary):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                "<=": lambda: int(left <= right),
                ">": lambda: int(left > right),
                ">=": lambda: int(left >= right),
                "&&": lambda: int(bool(left) and bool(right)),
                "||": lambda: int(bool(left) or bool(right)),
            }[expr.op]()
        except KeyError:
            return None
    return None


def parse_c(source):
    """Parse mini-C *source* into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


fold_const = _fold
