"""mini-C abstract syntax tree."""

from dataclasses import dataclass, field
from typing import List, Optional


# ---- expressions -----------------------------------------------------------


@dataclass
class Num:
    value: int
    line: int = 0


@dataclass
class Var:
    name: str
    line: int = 0


@dataclass
class Index:
    name: str
    index: object
    line: int = 0


@dataclass
class Unary:
    op: str  # - ~ !
    operand: object
    line: int = 0


@dataclass
class Binary:
    op: str  # + - * / % & | ^ << >> == != < <= > >= && ||
    left: object
    right: object
    line: int = 0


@dataclass
class Call:
    callee: str
    args: List[object] = field(default_factory=list)
    line: int = 0


# ---- statements --------------------------------------------------------------


@dataclass
class Block:
    body: List[object] = field(default_factory=list)


@dataclass
class LocalDecl:
    name: str
    init: Optional[object] = None
    line: int = 0


@dataclass
class Assign:
    target: object  # Var or Index
    value: object = None
    line: int = 0


@dataclass
class If:
    cond: object
    then: Block = None
    els: Optional[Block] = None
    line: int = 0


@dataclass
class While:
    cond: object
    body: Block = None
    line: int = 0


@dataclass
class For:
    init: Optional[object]
    cond: Optional[object]
    step: Optional[object]
    body: Block = None
    line: int = 0


@dataclass
class Return:
    value: Optional[object] = None
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class ExprStmt:
    expr: object = None
    line: int = 0


# ---- declarations ---------------------------------------------------------------


@dataclass
class GlobalVar:
    name: str
    array_size: Optional[int] = None
    init: Optional[List[int]] = None  # folded constants
    line: int = 0


@dataclass
class Param:
    name: str
    line: int = 0


@dataclass
class FuncDef:
    name: str
    params: List[Param]
    body: Block
    returns_value: bool = True  # int vs void
    isr_vector: Optional[int] = None
    line: int = 0


@dataclass
class Program:
    globals_: List[GlobalVar] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None
