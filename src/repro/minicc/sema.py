"""mini-C semantic checks.

Validates name resolution, arity, array indexing, assignment targets,
intrinsic usage, and ISR constraints before code generation.  Produces
the symbol environment the code generator uses.
"""

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.minicc.lexer import CCompileError
from repro.minicc import nodes as N
from repro.minicc.parser import fold_const

INTRINSICS = {
    "__mmio_read": 1,
    "__mmio_write": 2,
    "__enable_interrupts": 0,
    "__disable_interrupts": 0,
    "__nop": 0,
}


@dataclass
class Environment:
    globals_: Dict[str, N.GlobalVar] = field(default_factory=dict)
    functions: Dict[str, N.FuncDef] = field(default_factory=dict)
    # Functions whose address is taken (assigned/passed as a value):
    # these are indirect-call candidates.
    address_taken: Set[str] = field(default_factory=set)


def analyse(program):
    """Check *program*; returns the :class:`Environment`."""
    env = Environment()
    for gvar in program.globals_:
        if gvar.name in env.globals_:
            raise CCompileError(f"duplicate global {gvar.name!r}", gvar.line)
        if gvar.name in INTRINSICS:
            raise CCompileError(f"{gvar.name!r} is a reserved name", gvar.line)
        env.globals_[gvar.name] = gvar
    for fn in program.functions:
        if fn.name in env.functions or fn.name in env.globals_:
            raise CCompileError(f"duplicate definition {fn.name!r}", fn.line)
        if fn.name in INTRINSICS:
            raise CCompileError(f"{fn.name!r} is a reserved name", fn.line)
        env.functions[fn.name] = fn

    if "main" not in env.functions:
        raise CCompileError("program has no main()")
    if env.functions["main"].params:
        raise CCompileError("main() takes no parameters")

    for fn in program.functions:
        _check_function(fn, env)
    return env


def _check_function(fn, env):
    locals_: Set[str] = set()
    for param in fn.params:
        if param.name in locals_:
            raise CCompileError(f"duplicate parameter {param.name!r}", param.line)
        locals_.add(param.name)
    _check_block(fn.body, fn, env, locals_, loop_depth=0)


def _check_block(block, fn, env, locals_, loop_depth):
    for stmt in block.body:
        _check_stmt(stmt, fn, env, locals_, loop_depth)


def _check_stmt(stmt, fn, env, locals_, loop_depth):
    if isinstance(stmt, N.Block):
        _check_block(stmt, fn, env, locals_, loop_depth)
    elif isinstance(stmt, N.LocalDecl):
        if stmt.name in locals_:
            raise CCompileError(f"duplicate local {stmt.name!r}", stmt.line)
        if stmt.init is not None:
            _check_expr(stmt.init, fn, env, locals_)
        locals_.add(stmt.name)
    elif isinstance(stmt, N.Assign):
        _check_assign_target(stmt.target, fn, env, locals_)
        _check_expr(stmt.value, fn, env, locals_)
    elif isinstance(stmt, N.If):
        _check_expr(stmt.cond, fn, env, locals_)
        _check_block(stmt.then, fn, env, locals_, loop_depth)
        if stmt.els is not None:
            _check_block(stmt.els, fn, env, locals_, loop_depth)
    elif isinstance(stmt, N.While):
        _check_expr(stmt.cond, fn, env, locals_)
        _check_block(stmt.body, fn, env, locals_, loop_depth + 1)
    elif isinstance(stmt, N.For):
        if stmt.init is not None:
            _check_stmt(stmt.init, fn, env, locals_, loop_depth)
        if stmt.cond is not None:
            _check_expr(stmt.cond, fn, env, locals_)
        if stmt.step is not None:
            _check_stmt(stmt.step, fn, env, locals_, loop_depth)
        _check_block(stmt.body, fn, env, locals_, loop_depth + 1)
    elif isinstance(stmt, N.Return):
        if stmt.value is not None:
            if not fn.returns_value:
                raise CCompileError("void function returns a value", stmt.line)
            _check_expr(stmt.value, fn, env, locals_)
        elif fn.returns_value:
            raise CCompileError("int function must return a value", stmt.line)
    elif isinstance(stmt, (N.Break, N.Continue)):
        if loop_depth == 0:
            raise CCompileError("break/continue outside a loop", stmt.line)
    elif isinstance(stmt, N.ExprStmt):
        _check_expr(stmt.expr, fn, env, locals_, statement_position=True)
    else:  # pragma: no cover
        raise CCompileError(f"unknown statement {type(stmt).__name__}")


def _check_assign_target(target, fn, env, locals_):
    if isinstance(target, N.Var):
        if target.name in locals_:
            return
        gvar = env.globals_.get(target.name)
        if gvar is None:
            raise CCompileError(f"undefined variable {target.name!r}", target.line)
        if gvar.array_size is not None:
            raise CCompileError("cannot assign to an array name", target.line)
        return
    if isinstance(target, N.Index):
        gvar = env.globals_.get(target.name)
        if gvar is None or gvar.array_size is None:
            raise CCompileError(f"{target.name!r} is not an array", target.line)
        _check_expr(target.index, fn, env, locals_)
        return
    raise CCompileError("bad assignment target")


def _check_expr(expr, fn, env, locals_, statement_position=False):
    if isinstance(expr, N.Num):
        return
    if isinstance(expr, N.Var):
        if expr.name in locals_ or expr.name in env.globals_:
            if expr.name in env.globals_:
                return
            return
        fn_def = env.functions.get(expr.name)
        if fn_def is not None:
            if fn_def.isr_vector is not None:
                raise CCompileError("cannot take the address of an ISR", expr.line)
            env.address_taken.add(expr.name)
            return
        raise CCompileError(f"undefined identifier {expr.name!r}", expr.line)
    if isinstance(expr, N.Index):
        gvar = env.globals_.get(expr.name)
        if gvar is None or gvar.array_size is None:
            raise CCompileError(f"{expr.name!r} is not an array", expr.line)
        _check_expr(expr.index, fn, env, locals_)
        return
    if isinstance(expr, N.Unary):
        _check_expr(expr.operand, fn, env, locals_)
        return
    if isinstance(expr, N.Binary):
        _check_expr(expr.left, fn, env, locals_)
        _check_expr(expr.right, fn, env, locals_)
        return
    if isinstance(expr, N.Call):
        _check_call(expr, fn, env, locals_, statement_position)
        return
    raise CCompileError(f"unknown expression {type(expr).__name__}")


def _check_call(call, fn, env, locals_, statement_position):
    name = call.callee
    if name in INTRINSICS:
        arity = INTRINSICS[name]
        if len(call.args) != arity:
            raise CCompileError(f"{name} takes {arity} argument(s)", call.line)
        if name in ("__mmio_read", "__mmio_write"):
            if fold_const(call.args[0]) is None:
                raise CCompileError(f"{name} address must be constant", call.line)
        if name != "__mmio_read" and not statement_position:
            raise CCompileError(f"{name} is a statement, not a value", call.line)
        for arg in call.args[1:] if name == "__mmio_write" else call.args:
            _check_expr(arg, fn, env, locals_)
        return

    target = env.functions.get(name)
    if target is not None:
        if target.isr_vector is not None:
            raise CCompileError("interrupt handlers cannot be called", call.line)
        if not target.returns_value and not statement_position:
            raise CCompileError(f"void {name}() used as a value", call.line)
        if len(call.args) != len(target.params):
            raise CCompileError(
                f"{name} takes {len(target.params)} argument(s), got {len(call.args)}",
                call.line,
            )
    elif name in locals_ or name in env.globals_:
        # Indirect call through a variable holding a function address.
        if len(call.args) > 3:
            raise CCompileError("at most 3 arguments supported", call.line)
    else:
        raise CCompileError(f"call to undefined function {name!r}", call.line)
    for arg in call.args:
        _check_expr(arg, fn, env, locals_)
