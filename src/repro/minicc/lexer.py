"""mini-C lexer."""

import re
from dataclasses import dataclass

from repro.errors import ReproError


class CCompileError(ReproError):
    """Raised for mini-C compile errors (lexical, syntax, semantic)."""

    def __init__(self, message, line=None):
        self.line = line
        where = f"line {line}: " if line is not None else ""
        super().__init__(where + message)


KEYWORDS = {
    "int",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op><<=?|>>=?|<=|>=|==|!=|&&|\|\||[+\-*/%&|^~!<>=(){}\[\];,])
  | (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
""",
    re.VERBOSE | re.DOTALL,
)

_CHAR_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    kind: str  # num | ident | keyword | op | eof
    text: str
    value: int  # numeric value for 'num'
    line: int


def tokenize(source):
    """Tokenize mini-C *source* into a token list ending with EOF."""
    tokens = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CCompileError(f"bad character {source[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "nl":
            line += 1
            continue
        if kind == "ws":
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if kind == "num":
            base = 16 if text[:2].lower() == "0x" else 2 if text[:2].lower() == "0b" else 10
            tokens.append(Token("num", text, int(text, base), line))
        elif kind == "char":
            inner = text[1:-1]
            if inner.startswith("\\"):
                code = _CHAR_ESCAPES.get(inner[1])
                if code is None:
                    raise CCompileError(f"unknown escape {inner!r}", line)
            else:
                code = ord(inner)
            tokens.append(Token("num", text, code, line))
        elif kind == "ident":
            tok_kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(tok_kind, text, 0, line))
        else:
            tokens.append(Token("op", text, 0, line))
    tokens.append(Token("eof", "", 0, line))
    return tokens
