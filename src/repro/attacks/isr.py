"""Return-from-interrupt attack: tamper the saved context (P2).

The attacker exploits a (hypothetical) ISR-reachable memory bug to
rewrite the interrupted PC stored on the main stack while the ISR runs
(paper Sec. III-B: "a memory vulnerability in an ISR allows
modifications of the main stack where the context is kept").

The corruption is applied *after* the instrumented prologue has stored
the genuine context on the shadow stack -- the honest TOCTOU window --
so on EILID the epilogue check fires and resets; on baseline/CASU the
``reti`` dispatches to the attacker's target.
"""

from repro.attacks.harness import AttackHarness, AttackResult
from repro.errors import ReproError
from repro.toolchain.listing import parse_listing


def _isr_body_address(harness):
    """First instruction after the instrumented prologue of the ISR."""
    listing = parse_listing(harness.build.listing)
    isr_addr = listing.label_address("__isr_tick")
    if harness.security != "eilid":
        return isr_addr, 2  # saved PC at SP+2 (SR at SP+0)
    # Skip to just past the `call #NS_EILID_store_rfi`.
    for entry in listing.instructions("call"):
        if entry.addr >= isr_addr and entry.note == "NS_EILID_store_rfi":
            # Saved PC sits above the three reserved-register saves.
            return listing.next_address(entry.addr), 8
    raise ReproError("instrumented ISR prologue not found in listing")


def interrupt_context_tamper(security: str) -> AttackResult:
    harness = AttackHarness(security)
    unlock = harness.symbol("unlock")
    body, pc_offset = _isr_body_address(harness)

    harness.run_to({body})
    if harness.device.cpu.pc != body:
        return harness.finish("interrupt-context-tamper", "ISR never entered")
    sp = harness.device.cpu.sp
    slot = sp + pc_offset
    original = harness.device.peek_word(slot)
    harness.device.bus.poke_word(slot, unlock)

    return harness.finish(
        "interrupt-context-tamper",
        corruption_detail=(
            f"saved PC [0x{slot:04x}] 0x{original:04x} -> unlock@0x{unlock:04x}"
        ),
    )
