"""Victim programs for the attack suite.

``VICTIM_C`` is a small telemetry node with a privileged action
(`unlock`) the attacker wants to reach: it drives a distinctive GPIO
pattern (0xAA) that serves as the hijack evidence.  ``process`` is the
function whose activation record the attacker corrupts.
"""

from typing import Optional

from repro.api.firmware import build_firmware, device_for
from repro.api.spec import FirmwareSpec
from repro.eilid.iterbuild import IterativeBuild
from repro.minicc import compile_c
from repro.peripherals import Adc, AdcSchedule

UNLOCK_MARKER = 0xAA

VICTIM_C = """
// Telemetry node with a privileged maintenance action. The attacker's
// goal is to reach unlock() without authorisation.
int readings;
int last;
int ticks;
int op;

__interrupt(9) void tick() {
    ticks = ticks + 1;
}

void unlock() {
    __mmio_write(0x0010, 0xAA);            // evidence of hijack
}

int process(int v) {
    last = (last + v) >> 1;
    return last;
}

void main() {
    readings = 0;
    last = 0;
    ticks = 0;
    op = process;                          // telemetry hook pointer
    __mmio_write(0x0024, 2000);
    __mmio_write(0x0020, 3);
    __enable_interrupts();
    for (int i = 0; i < 30; i = i + 1) {
        __mmio_write(0x0030, 8 | 5);
        int v = __mmio_read(0x0032);
        op(v);                             // dispatch through the hook
        readings = readings + 1;
    }
    __disable_interrupts();
    __mmio_write(0x0070, readings);
}
"""

# Hand-written assembly victims for monitor-level attacks (these model
# attacker-supplied or legacy binaries, so they bypass EILIDinst).

PMEM_WRITER_ASM = """
; Firmware with an attacker-reachable arbitrary-write: it stores a
; word into its own code region (models a flash-corruption exploit).
    .text
    .global main
main:
    mov #0xbeef, r10
    mov r10, &0xe002        ; overwrite code near the reset path
    mov #1, &0x0070         ; DONE
loop:
    jmp loop
"""

SECURE_RAM_READER_ASM = """
; Firmware that tries to read and overwrite the EILID shadow stack
; from untrusted code.
    .text
    .global main
main:
    mov &0x1030, r10        ; read a shadow-stack slot
    mov #0xdead, &0x1030    ; overwrite it
    mov #1, &0x0070
loop:
    jmp loop
"""

IVT_OVERWRITE_ASM = """
; Firmware that rewrites the timer interrupt vector to point at
; attacker code, then arms the timer and waits for the hardware to
; dispatch into it (models a vector-table hijack).
    .text
    .global main
main:
    mov #evil, &0xfff2      ; timer vector (9) -> attacker handler
    mov #200, &0x0024       ; timer compare
    mov #3, &0x0020         ; timer enable + irq
    eint
wait:
    jmp wait
evil:
    mov #0xaa, &0x0010      ; hijack marker
    mov #1, &0x0070         ; DONE
    reti
"""

ROM_JUMP_ASM = """
; Firmware that branches into the middle of the trusted ROM, skipping
; the entry section (attempt to abuse S_EILID internals directly).
    .text
    .global main
main:
    br #S_EILID_leave       ; mid-ROM target: not the entry point
    mov #1, &0x0070
loop:
    jmp loop
"""


def victim_adc():
    return {"adc": Adc(AdcSchedule({5: AdcSchedule.steps(5, [100, 300, 500, 700])}))}


def _build_victim_with(builder: IterativeBuild, variant: str):
    asm = compile_c(VICTIM_C, "victim")
    if variant == "eilid":
        return builder.build_eilid(asm, "victim.s").final
    return builder.build_original(asm, "victim.s")


def victim_firmware_spec(variant: str) -> FirmwareSpec:
    """The victim firmware as a declarative spec (repro.api's path).

    Going through the spec means the build is cached process-wide by
    :func:`repro.api.firmware.build_firmware` -- the artifacts are
    immutable (devices copy the image into their own bus), so every
    attack scenario shares them; only the device itself must be fresh.
    """
    return FirmwareSpec(kind="minicc", source=VICTIM_C, variant=variant,
                        name="victim")


def build_victim(security: str, builder: Optional[IterativeBuild] = None):
    """Build the C victim for *security* level and return (device, build).

    The EILID device runs the instrumented binary; baseline and CASU
    run the original (they have no EILID runtime to call into).
    """
    variant = "eilid" if security == "eilid" else "original"
    if builder is not None:
        build = _build_victim_with(builder, variant)
        from repro.device import build_device

        device = build_device(build.program, security=security,
                              peripherals=victim_adc())
        return device, build
    spec = victim_firmware_spec(variant)
    device = device_for(spec, security, peripherals=victim_adc())
    return device, build_firmware(spec)
