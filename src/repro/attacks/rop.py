"""Backward-edge attack: smash a function's return address (P1).

The attacker waits until ``process()`` is entered (its return address
is the word at the stack pointer) and overwrites that word with the
address of the privileged ``unlock()`` -- the entry step of a
return-oriented chain.

Expected outcomes: baseline and CASU devices execute ``unlock`` (CASU
guards code *immutability*, not control flow -- the paper's motivating
gap); the EILID device resets at the instrumented ``ret`` check before
the corrupted address is ever fetched.
"""

from repro.attacks.harness import AttackHarness, AttackResult


def return_address_smash(security: str) -> AttackResult:
    harness = AttackHarness(security)
    process_entry = harness.symbol("process")
    unlock = harness.symbol("unlock")

    harness.run_to({process_entry})
    sp = harness.device.cpu.sp
    original = harness.device.peek_word(sp)
    harness.device.bus.poke_word(sp, unlock)  # the memory-vulnerability write

    return harness.finish(
        "return-address-smash",
        corruption_detail=(
            f"[sp=0x{sp:04x}] 0x{original:04x} -> unlock@0x{unlock:04x}"
        ),
    )
