"""Code-injection and memory-isolation attacks.

* :func:`code_injection` -- write shellcode into DMEM and divert a
  return into it (the classic stack-smash the W-xor-X policy kills).
* :func:`pmem_overwrite` -- firmware writes its own code region (CASU's
  core guarantee: PMEM is immutable outside authenticated updates).
* :func:`shadow_stack_tamper` -- untrusted code touches the secure
  shadow-stack bank (the EILID hardware extension).
* :func:`rom_mid_entry_jump` -- branch into the middle of the trusted
  ROM, bypassing the entry section (ROM atomicity).
"""

import functools

from repro.attacks.harness import AttackHarness, AttackOutcome, AttackResult
from repro.attacks.victims import (
    PMEM_WRITER_ASM,
    ROM_JUMP_ASM,
    SECURE_RAM_READER_ASM,
    UNLOCK_MARKER,
)
from repro.device import build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.peripherals.ports import GPIO_OUT

# Hand-assembled shellcode: `mov #0xAA, &GPIO_OUT ; jmp $`
# (the attacker's payload writes the hijack marker then parks).
_SHELLCODE_WORDS = (0x40B2, UNLOCK_MARKER, GPIO_OUT, 0x3FFF)


def code_injection(security: str) -> AttackResult:
    harness = AttackHarness(security)
    process_entry = harness.symbol("process")

    # Inject the payload into DMEM (models a buffer overflow landing
    # attacker bytes in RAM).
    payload_addr = harness.device.layout.dmem.start + 0x80
    for index, word in enumerate(_SHELLCODE_WORDS):
        harness.device.bus.poke_word(payload_addr + 2 * index, word)

    harness.run_to({process_entry})
    sp = harness.device.cpu.sp
    harness.device.bus.poke_word(sp, payload_addr)

    return harness.finish(
        "code-injection",
        corruption_detail=f"return -> DMEM shellcode @0x{payload_addr:04x}",
    )


@functools.lru_cache(maxsize=None)
def _raw_asm_build(source, link_eilid_runtime):
    """Assemble a hand-written firmware once per process (the build is
    immutable; each attack run gets its own device)."""
    from repro.toolchain.build import SourceModule

    builder = IterativeBuild()
    modules = [
        SourceModule("crt0.s", builder.trusted.crt0_source(eilid_enabled=False)),
        SourceModule("attack.s", source, is_app=True),
    ]
    if link_eilid_runtime:
        modules.append(SourceModule("eilid_rom.s", builder.trusted.rom_source()))
    return builder.pipeline.build(modules, name="raw-attack")


def _run_raw_asm(source, security, link_eilid_runtime=True):
    """Build a hand-written firmware (attacker-controlled binary)."""
    build = _raw_asm_build(source, link_eilid_runtime)
    device = build_device(build.program, security=security)
    return device


def _classify_raw(name, security, device, succeeded_detail):
    result = device.run(max_cycles=100_000)
    if result.violations:
        return AttackResult(name, security, AttackOutcome.RESET, result.violations,
                            device=device)
    if result.done:
        return AttackResult(name, security, AttackOutcome.HIJACKED,
                            detail=succeeded_detail, device=device)
    return AttackResult(name, security, AttackOutcome.NO_EFFECT, device=device)


def pmem_overwrite(security: str) -> AttackResult:
    device = _run_raw_asm(PMEM_WRITER_ASM, security, link_eilid_runtime=False)
    before = device.peek_word(0xE002)
    result = _classify_raw("pmem-overwrite", security, device, "code region modified")
    if result.outcome is AttackOutcome.HIJACKED and device.peek_word(0xE002) == before:
        result.outcome = AttackOutcome.NO_EFFECT
    return result


def shadow_stack_tamper(security: str) -> AttackResult:
    device = _run_raw_asm(SECURE_RAM_READER_ASM, security, link_eilid_runtime=False)
    return _classify_raw(
        "shadow-stack-tamper", security, device, "shadow stack read+written"
    )


def rom_mid_entry_jump(security: str) -> AttackResult:
    device = _run_raw_asm(ROM_JUMP_ASM, security, link_eilid_runtime=True)
    return _classify_raw("rom-mid-entry-jump", security, device, "rom internals reached")
