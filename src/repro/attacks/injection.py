"""Code-injection and memory-isolation attacks.

* :func:`code_injection` -- write shellcode into DMEM and divert a
  return into it (the classic stack-smash the W-xor-X policy kills).
* :func:`pmem_overwrite` -- firmware writes its own code region (CASU's
  core guarantee: PMEM is immutable outside authenticated updates).
* :func:`shadow_stack_tamper` -- untrusted code touches the secure
  shadow-stack bank (the EILID hardware extension).
* :func:`rom_mid_entry_jump` -- branch into the middle of the trusted
  ROM, bypassing the entry section (ROM atomicity).
"""

from repro.api.firmware import device_for
from repro.api.spec import FirmwareSpec
from repro.attacks.harness import AttackHarness, AttackOutcome, AttackResult
from repro.attacks.victims import (
    IVT_OVERWRITE_ASM,
    PMEM_WRITER_ASM,
    ROM_JUMP_ASM,
    SECURE_RAM_READER_ASM,
    UNLOCK_MARKER,
)
from repro.peripherals.ports import GPIO_OUT

# Hand-assembled shellcode: `mov #0xAA, &GPIO_OUT ; jmp $`
# (the attacker's payload writes the hijack marker then parks).
_SHELLCODE_WORDS = (0x40B2, UNLOCK_MARKER, GPIO_OUT, 0x3FFF)


def code_injection(security: str) -> AttackResult:
    harness = AttackHarness(security)
    process_entry = harness.symbol("process")

    # Inject the payload into DMEM (models a buffer overflow landing
    # attacker bytes in RAM).
    payload_addr = harness.device.layout.dmem.start + 0x80
    for index, word in enumerate(_SHELLCODE_WORDS):
        harness.device.bus.poke_word(payload_addr + 2 * index, word)

    harness.run_to({process_entry})
    sp = harness.device.cpu.sp
    harness.device.bus.poke_word(sp, payload_addr)

    return harness.finish(
        "code-injection",
        corruption_detail=f"return -> DMEM shellcode @0x{payload_addr:04x}",
    )


# The hand-written firmwares as declarative specs (the repro.api build
# path caches the immutable images once per process; each attack run
# gets its own device).  Also consulted by Session.build() so attack
# scenarios report the image that actually executed.
RAW_ATTACK_FIRMWARE = {
    "pmem_overwrite": FirmwareSpec(
        kind="asm", source=PMEM_WRITER_ASM, variant="original",
        name="raw-attack", link_rom=False),
    "shadow_stack_tamper": FirmwareSpec(
        kind="asm", source=SECURE_RAM_READER_ASM, variant="original",
        name="raw-attack", link_rom=False),
    "ivt_overwrite": FirmwareSpec(
        kind="asm", source=IVT_OVERWRITE_ASM, variant="original",
        name="raw-attack", link_rom=False),
    "rom_mid_entry_jump": FirmwareSpec(
        kind="asm", source=ROM_JUMP_ASM, variant="original",
        name="raw-attack", link_rom=True),
}


def _run_raw_asm(attack_name, security):
    """Build a hand-written firmware (attacker-controlled binary)."""
    return device_for(RAW_ATTACK_FIRMWARE[attack_name], security)


def _classify_raw(name, security, device, succeeded_detail):
    result = device.run(max_cycles=100_000)
    if result.violations:
        return AttackResult(name, security, AttackOutcome.RESET, result.violations,
                            device=device)
    if result.done:
        return AttackResult(name, security, AttackOutcome.HIJACKED,
                            detail=succeeded_detail, device=device)
    return AttackResult(name, security, AttackOutcome.NO_EFFECT, device=device)


def pmem_overwrite(security: str) -> AttackResult:
    device = _run_raw_asm("pmem_overwrite", security)
    before = device.peek_word(0xE002)
    result = _classify_raw("pmem-overwrite", security, device, "code region modified")
    if result.outcome is AttackOutcome.HIJACKED and device.peek_word(0xE002) == before:
        result.outcome = AttackOutcome.NO_EFFECT
    return result


def shadow_stack_tamper(security: str) -> AttackResult:
    device = _run_raw_asm("shadow_stack_tamper", security)
    return _classify_raw(
        "shadow-stack-tamper", security, device, "shadow stack read+written"
    )


def ivt_overwrite(security: str) -> AttackResult:
    device = _run_raw_asm("ivt_overwrite", security)
    return _classify_raw(
        "ivt-overwrite", security, device, "interrupt vector hijacked"
    )


def rom_mid_entry_jump(security: str) -> AttackResult:
    device = _run_raw_asm("rom_mid_entry_jump", security)
    return _classify_raw("rom-mid-entry-jump", security, device, "rom internals reached")
