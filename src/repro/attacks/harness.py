"""Attack execution and outcome classification."""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.victims import UNLOCK_MARKER, build_victim
from repro.casu.monitor import Violation


class AttackOutcome(enum.Enum):
    HIJACKED = "hijacked"  # attacker goal reached, device kept running
    RESET = "reset"  # a monitor violation reset the device
    NO_EFFECT = "no-effect"  # corruption applied but goal not reached
    ALLOWED = "allowed"  # in-policy behaviour (e.g. bend to a valid function)


@dataclass
class AttackResult:
    name: str
    security: str
    outcome: AttackOutcome
    violations: List[Violation] = field(default_factory=list)
    detail: str = ""
    # The attacked device, so verifier-side analyses (trace replay in
    # repro.cfg) can inspect the evidence the attack left behind.
    device: Optional[object] = field(default=None, repr=False)

    @property
    def defended(self):
        return self.outcome is AttackOutcome.RESET

    def __str__(self):
        extra = f" ({self.violations[0]})" if self.violations else ""
        return f"{self.name} vs {self.security}: {self.outcome.value}{extra} {self.detail}".rstrip()


class AttackHarness:
    """Drives one attack scenario against one victim device.

    The flow models the paper's adversary: run the victim normally,
    apply a surgical memory corruption at the chosen point (the stand-in
    for exploiting a memory vulnerability), let execution continue, and
    observe whether the attacker's goal (the 0xAA unlock marker) is
    reached, the device resets, or nothing happens.
    """

    def __init__(self, security: str):
        self.security = security
        self.device, self.build = build_victim(security)

    @property
    def program(self):
        return self.build.program if hasattr(self.build, "program") else self.build.final.program

    def symbol(self, name):
        return self.device.program.symbols[name]

    def run_to(self, pc_values, max_cycles=500_000):
        return self.device.run(break_at=set(pc_values), max_cycles=max_cycles,
                               stop_on_done=False)

    def hijack_evidence(self):
        gpio = self.device.peripherals["gpio"]
        return UNLOCK_MARKER in gpio.event_values("gpio.out")

    def finish(self, name, corruption_detail="", max_cycles=500_000) -> AttackResult:
        result = self.device.run(max_cycles=max_cycles)
        # Evidence first: if the attacker's payload ran, the attack
        # succeeded even when the device crashed/reset *afterwards* (a
        # late W-xor-X reset does not undo the privileged action).
        if self.hijack_evidence():
            outcome = AttackOutcome.HIJACKED
        elif result.violations:
            outcome = AttackOutcome.RESET
        else:
            outcome = AttackOutcome.NO_EFFECT
        return AttackResult(
            name=name,
            security=self.security,
            outcome=outcome,
            violations=result.violations,
            detail=corruption_detail,
            device=self.device,
        )
