"""Forward-edge attacks: corrupt the telemetry hook pointer (P3).

Two variants, matching the paper's precise claim:

* :func:`pointer_hijack` redirects the hook *into the middle* of a
  function -- not a legal entry point.  EILID's table check resets;
  baseline and CASU execute the attacker's gadget.
* :func:`pointer_bend_to_valid_function` redirects the hook to another
  *valid* function entry.  EILID explicitly allows this (Sec. IV-A:
  function-level forward-edge CFI; the paper argues the risk is low on
  small firmware).  The attack harness classifies this as ``ALLOWED``
  on EILID -- reproducing the admitted limitation, not a bug.
"""

from repro.attacks.harness import AttackHarness, AttackOutcome, AttackResult


def _corrupt_hook(harness, target):
    """Overwrite the global hook pointer before the next dispatch."""
    main_entry = harness.symbol("main")
    harness.run_to({main_entry})  # let crt0 + table registration finish
    # Step until the hook has been initialised, then corrupt it.
    op_addr = harness.symbol("op")
    process = harness.symbol("process")
    for _ in range(6_000):
        if harness.device.peek_word(op_addr) == process:
            break
        record, violation = harness.device.step()
        if violation is not None:
            return False
    harness.device.bus.poke_word(op_addr, target)
    return True


def pointer_hijack(security: str) -> AttackResult:
    harness = AttackHarness(security)
    gadget = harness.symbol("unlock") + 2  # mid-function: skips the prologue
    if not _corrupt_hook(harness, gadget):
        return harness.finish("pointer-hijack", "setup failed")
    return harness.finish(
        "pointer-hijack", corruption_detail=f"op -> unlock+2 (0x{gadget:04x})"
    )


def pointer_bend_to_valid_function(security: str) -> AttackResult:
    harness = AttackHarness(security)
    target = harness.symbol("unlock")  # a legal entry in the function table
    if not _corrupt_hook(harness, target):
        return harness.finish("pointer-bend", "setup failed")
    result = harness.finish(
        "pointer-bend-to-valid-function",
        corruption_detail=f"op -> unlock (0x{target:04x}) [legal table entry]",
    )
    if result.outcome is AttackOutcome.HIJACKED and security == "eilid":
        # Function-level CFI admits this by design (paper Sec. IV-A).
        result.outcome = AttackOutcome.ALLOWED
    return result
