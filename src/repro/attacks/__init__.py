"""Control-flow attack suite.

Implements the adversary of the paper's threat model (Sec. III-B): full
knowledge of the software, arbitrary run-time tampering with stack/heap
data (return addresses, function pointers, interrupt contexts), and
code-injection attempts -- exercised against three device builds
(baseline / CASU / EILID) to reproduce the protection matrix in
DESIGN.md.

Attacks are modelled as precise memory corruptions applied at a chosen
execution point, standing in for the memory-vulnerability exploitation
step the paper assumes; what the defence sees (a corrupted word used in
a control transfer) is identical.
"""

from repro.attacks.harness import AttackOutcome, AttackResult, AttackHarness
from repro.attacks.rop import return_address_smash
from repro.attacks.isr import interrupt_context_tamper
from repro.attacks.indirect import pointer_hijack, pointer_bend_to_valid_function
from repro.attacks.injection import (
    code_injection,
    pmem_overwrite,
    shadow_stack_tamper,
    rom_mid_entry_jump,
)

__all__ = [
    "AttackOutcome",
    "AttackResult",
    "AttackHarness",
    "return_address_smash",
    "interrupt_context_tamper",
    "pointer_hijack",
    "pointer_bend_to_valid_function",
    "code_injection",
    "pmem_overwrite",
    "shadow_stack_tamper",
    "rom_mid_entry_jump",
]
