"""Control-flow attack suite.

Implements the adversary of the paper's threat model (Sec. III-B): full
knowledge of the software, arbitrary run-time tampering with stack/heap
data (return addresses, function pointers, interrupt contexts), and
code-injection attempts -- exercised against three device builds
(baseline / CASU / EILID) to reproduce the protection matrix in
DESIGN.md.

Attacks are modelled as precise memory corruptions applied at a chosen
execution point, standing in for the memory-vulnerability exploitation
step the paper assumes; what the defence sees (a corrupted word used in
a control transfer) is identical.
"""

from repro.attacks.harness import AttackOutcome, AttackResult, AttackHarness
from repro.attacks.rop import return_address_smash
from repro.attacks.isr import interrupt_context_tamper
from repro.attacks.indirect import pointer_hijack, pointer_bend_to_valid_function
from repro.attacks.injection import (
    code_injection,
    ivt_overwrite,
    pmem_overwrite,
    shadow_stack_tamper,
    rom_mid_entry_jump,
)

# The scenario registry: every launchable attack by name.  This is the
# set repro.api validates ScenarioSpec.attack against and the CLI's
# ``attack`` subcommand dispatches through.
ATTACKS = {
    "return_address_smash": return_address_smash,
    "interrupt_context_tamper": interrupt_context_tamper,
    "pointer_hijack": pointer_hijack,
    "pointer_bend_to_valid_function": pointer_bend_to_valid_function,
    "code_injection": code_injection,
    "pmem_overwrite": pmem_overwrite,
    "shadow_stack_tamper": shadow_stack_tamper,
    "ivt_overwrite": ivt_overwrite,
    "rom_mid_entry_jump": rom_mid_entry_jump,
}


def attack_firmware_spec(attack: str, security: str):
    """The firmware an attack scenario actually executes.

    The raw-assembly monitor-level attacks carry their own images
    (:data:`repro.attacks.injection.RAW_ATTACK_FIRMWARE`); everything
    else corrupts the standard C victim, instrumented only on EILID
    devices.  ``Session.build()`` reports artifacts from this spec.
    """
    from repro.attacks.injection import RAW_ATTACK_FIRMWARE
    from repro.attacks.victims import victim_firmware_spec

    spec = RAW_ATTACK_FIRMWARE.get(attack)
    if spec is not None:
        return spec
    return victim_firmware_spec("eilid" if security == "eilid" else "original")


__all__ = [
    "ATTACKS",
    "AttackOutcome",
    "AttackResult",
    "AttackHarness",
    "attack_firmware_spec",
    "return_address_smash",
    "interrupt_context_tamper",
    "pointer_hijack",
    "pointer_bend_to_valid_function",
    "code_injection",
    "ivt_overwrite",
    "pmem_overwrite",
    "shadow_stack_tamper",
    "rom_mid_entry_jump",
]
