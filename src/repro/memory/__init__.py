"""Memory map and bus model of the simulated openMSP430-class device.

The bus records every access (fetch/read/write) with its address and the
program counter that issued it; the CASU/EILID hardware monitors consume
these records cycle-by-cycle, exactly as the real monitor taps the MCU
address/data/write-enable signals.
"""

from repro.memory.map import MemoryLayout, Region, RegionKind
from repro.memory.bus import Access, AccessKind, Bus

__all__ = [
    "MemoryLayout",
    "Region",
    "RegionKind",
    "Access",
    "AccessKind",
    "Bus",
]
