"""Byte-addressable bus with per-access records.

Every CPU access goes through :class:`Bus`, which keeps the raw 64 KB
byte array, dispatches peripheral-register accesses to handlers, and
appends an :class:`Access` record to the current cycle's trace.  The
hardware monitors (``repro.casu.monitor``) see exactly these records --
the Python equivalent of tapping the MCU's ``mab``/``mdb``/``wen``
signals.

Alignment (SLAU049 3.2): word accesses ignore the low address bit --
``read_word(0x0201)`` and ``read_word(0x0200)`` address the same word,
exactly like the hardware's 16-bit memory address bus.  Accessing past
the top of the 64 KB address space raises :class:`MemoryAccessError`
(the CPU surfaces that as a fault step rather than crashing).

Peripheral byte reads: a register's read handler models the
architectural side effect of reading that register (e.g. popping the
UART RX FIFO), so it fires at most once per architectural access -- on
the data (low) byte.  Reading the high byte returns the latched backing
store without re-triggering the handler, so a byte-wise word read of a
data register fires its side effect exactly once.

The bus also participates in the CPU's decoded-instruction cache: every
mutation of ``mem`` through the bus (CPU writes, back-door pokes,
loader writes, violation rollbacks) invalidates any cached decode whose
words overlap the mutated address.  See :mod:`repro.cpu.core` for the
full contract.
"""

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import MemoryAccessError
from repro.memory.map import MemoryLayout

ADDRESS_SPACE = 0x10000


class AccessKind(enum.Enum):
    FETCH = "fetch"  # instruction/extension word fetch
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One bus transaction, as seen by the hardware monitors."""

    kind: AccessKind
    addr: int
    value: int
    size: int  # 1 or 2 bytes
    pc: int  # PC of the instruction issuing the access
    prev: Optional[int] = None  # pre-write contents (writes only; for rollback)

    def __str__(self):
        return f"{self.kind.value.upper():5s} 0x{self.addr:04x} = 0x{self.value:04x} (pc=0x{self.pc:04x})"


class Bus:
    """Flat memory plus peripheral dispatch and access recording."""

    def __init__(self, layout: Optional[MemoryLayout] = None):
        self.layout = layout or MemoryLayout.default()
        self.mem = bytearray(ADDRESS_SPACE)
        self._read_handlers: Dict[int, Callable[[], int]] = {}
        self._write_handlers: Dict[int, Callable[[int], None]] = {}
        self.trace: List[Access] = []
        self.recording = True
        # PC context for access records; the CPU sets this each step.
        self.current_pc = 0
        # Decoded-instruction cache coupling (see repro.cpu.core):
        # ``_dcache`` is the CPU-owned {pc: entry} dict; ``_dcache_index``
        # maps each word-aligned address covered by a cached instruction
        # to the set of cache keys to kill when that address is written;
        # ``_dcache_span`` remembers each key's word count so those index
        # entries can be unregistered on invalidation.
        self._dcache: Optional[dict] = None
        self._dcache_index: Dict[int, set] = {}
        self._dcache_span: Dict[int, int] = {}

    # ---- peripheral registration ------------------------------------------

    def register_peripheral_word(self, addr, read=None, write=None):
        """Attach handlers for a 16-bit peripheral register at *addr*."""
        if not self.layout.in_peripheral(addr):
            raise MemoryAccessError(f"0x{addr:04x} is not in the peripheral region")
        if read is not None:
            self._read_handlers[addr] = read
        if write is not None:
            self._write_handlers[addr] = write

    # ---- decoded-instruction cache hooks ----------------------------------

    def bind_decode_cache(self, cache: dict):
        """Adopt the CPU's decode cache for write invalidation."""
        self._dcache = cache
        self._dcache_index.clear()
        self._dcache_span.clear()

    def note_code_cached(self, key: int, n_words: int):
        """Register the code words a new cache entry depends on."""
        self._dcache_span[key] = n_words
        index = self._dcache_index
        for offset in range(n_words):
            addr = (key + 2 * offset) & 0xFFFE
            bucket = index.get(addr)
            if bucket is None:
                index[addr] = bucket = set()
            bucket.add(key)

    def _invalidate_code(self, addr):
        """Kill every cache entry whose words cover word-aligned *addr*."""
        cache = self._dcache
        index = self._dcache_index
        for key in index.pop(addr, ()):
            if cache is not None:
                cache.pop(key, None)
            for offset in range(self._dcache_span.pop(key, 0)):
                covered = (key + 2 * offset) & 0xFFFE
                bucket = index.get(covered)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del index[covered]

    # ---- raw (monitor-invisible) access for loaders and test harnesses ----

    def load_bytes(self, addr, data):
        """Back-door write used by the image loader / attack harness.

        This models an external agent (programmer, DMA-capable attacker)
        rather than a CPU bus transaction, so it is not traced.  Security
        arguments never rely on it: CASU guards *CPU-issued* writes.
        """
        end = addr + len(data)
        if end > ADDRESS_SPACE:
            raise MemoryAccessError("image does not fit in the address space")
        self.mem[addr:end] = data
        if self._dcache_index:
            for aligned in range(addr & 0xFFFE, end, 2):
                if aligned in self._dcache_index:
                    self._invalidate_code(aligned)

    def restore_memory(self, baseline: bytes, delta) -> None:
        """Replace the whole memory image (snapshot restore path).

        A restore is an arbitrary mutation of every byte, so the entire
        decoded-instruction cache is dropped -- the same contract as
        self-modifying code, applied wholesale.  Cheaper and simpler
        than per-word invalidation over a 64 KB diff, and ``reset()``
        never refills stale entries because the cache is keyed by PC
        over *current* memory.
        """
        from repro.snapshot import apply_memory_delta

        if self._dcache is not None:
            self._dcache.clear()
        self._dcache_index.clear()
        self._dcache_span.clear()
        apply_memory_delta(self.mem, baseline, delta)

    def peek_word(self, addr):
        self._check(addr, 2)
        return self.mem[addr] | (self.mem[addr + 1] << 8)

    def peek_byte(self, addr):
        self._check(addr, 1)
        return self.mem[addr]

    def poke_word(self, addr, value):
        self._check(addr, 2)
        self.mem[addr] = value & 0xFF
        self.mem[addr + 1] = (value >> 8) & 0xFF
        base = addr & 0xFFFE
        if base in self._dcache_index:
            self._invalidate_code(base)
        if addr & 1:  # an odd poke straddles two words
            upper = (addr + 1) & 0xFFFE
            if upper in self._dcache_index:
                self._invalidate_code(upper)

    # ---- CPU-visible access -------------------------------------------------

    def fetch_word(self, addr):
        """Instruction-stream fetch (monitored as FETCH).

        Raises :class:`MemoryAccessError` when the fetch crosses the top
        of the address space (e.g. the extension word of a two-word
        instruction sitting at 0xFFFE); the CPU turns that into a fault
        step.
        """
        if addr < 0 or addr + 2 > ADDRESS_SPACE:
            raise MemoryAccessError(f"fetch at 0x{addr:04x} outside address space")
        addr &= 0xFFFE
        mem = self.mem
        value = mem[addr] | (mem[addr + 1] << 8)
        if self.recording:
            self.trace.append(Access(AccessKind.FETCH, addr, value, 2, self.current_pc))
        return value

    def read_word(self, addr):
        if addr < 0 or addr >= ADDRESS_SPACE:
            raise MemoryAccessError(f"access at 0x{addr:04x} outside address space")
        addr &= 0xFFFE  # SLAU049: low address bit ignored on word access
        handler = self._read_handlers.get(addr)
        if handler is not None:
            value = handler() & 0xFFFF
            mem = self.mem  # keep backing store coherent
            mem[addr] = value & 0xFF
            mem[addr + 1] = value >> 8
            if addr in self._dcache_index:  # register words can be executed
                self._invalidate_code(addr)
        else:
            mem = self.mem
            value = mem[addr] | (mem[addr + 1] << 8)
        if self.recording:
            self.trace.append(Access(AccessKind.READ, addr, value, 2, self.current_pc))
        return value

    def read_byte(self, addr):
        if addr < 0 or addr >= ADDRESS_SPACE:
            raise MemoryAccessError(f"access at 0x{addr:04x} outside address space")
        handler = self._read_handlers.get(addr)
        if handler is not None:
            # Handlers are registered at the register's (even) base
            # address, so this branch is the data-byte access: the one
            # architectural read that triggers the side effect.  The
            # high byte (odd address) reads the latched backing store.
            word = handler() & 0xFFFF
            mem = self.mem
            mem[addr] = value = word & 0xFF
            mem[addr + 1] = word >> 8
            if addr in self._dcache_index:  # register words can be executed
                self._invalidate_code(addr)
        else:
            value = self.mem[addr]
        if self.recording:
            self.trace.append(Access(AccessKind.READ, addr, value, 1, self.current_pc))
        return value

    def write_word(self, addr, value):
        if addr < 0 or addr >= ADDRESS_SPACE:
            raise MemoryAccessError(f"access at 0x{addr:04x} outside address space")
        addr &= 0xFFFE  # SLAU049: low address bit ignored on word access
        value &= 0xFFFF
        mem = self.mem
        if self.recording:
            self.trace.append(Access(AccessKind.WRITE, addr, value, 2,
                                     self.current_pc, mem[addr] | (mem[addr + 1] << 8)))
        mem[addr] = value & 0xFF
        mem[addr + 1] = value >> 8
        if addr in self._dcache_index:
            self._invalidate_code(addr)
        handler = self._write_handlers.get(addr)
        if handler is not None:
            handler(value)

    def write_byte(self, addr, value):
        if addr < 0 or addr >= ADDRESS_SPACE:
            raise MemoryAccessError(f"access at 0x{addr:04x} outside address space")
        value &= 0xFF
        mem = self.mem
        if self.recording:
            self.trace.append(Access(AccessKind.WRITE, addr, value, 1,
                                     self.current_pc, mem[addr]))
        mem[addr] = value
        base = addr & 0xFFFE
        if base in self._dcache_index:
            self._invalidate_code(base)
        handler = self._write_handlers.get(base)
        if handler is not None:
            handler(mem[base] | (mem[base + 1] << 8))

    # ---- internals -----------------------------------------------------------

    def _check(self, addr, size):
        if addr < 0 or addr + size > ADDRESS_SPACE:
            raise MemoryAccessError(f"access at 0x{addr:04x} outside address space")

    def rollback_writes(self, accesses):
        """Undo the WRITE accesses of one step (hardware reset semantics:
        a violating instruction never commits)."""
        for access in reversed(accesses):
            if access.kind is not AccessKind.WRITE or access.prev is None:
                continue
            if access.size == 2:
                self.poke_word(access.addr, access.prev)
            else:
                self.mem[access.addr] = access.prev & 0xFF
                base = access.addr & 0xFFFE
                if base in self._dcache_index:
                    self._invalidate_code(base)

    def drain_trace(self):
        """Return and clear the accesses recorded since the last drain."""
        trace, self.trace = self.trace, []
        return trace
