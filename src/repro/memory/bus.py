"""Byte-addressable bus with per-access records.

Every CPU access goes through :class:`Bus`, which keeps the raw 64 KB
byte array, dispatches peripheral-register accesses to handlers, and
appends an :class:`Access` record to the current cycle's trace.  The
hardware monitors (``repro.casu.monitor``) see exactly these records --
the Python equivalent of tapping the MCU's ``mab``/``mdb``/``wen``
signals.
"""

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import MemoryAccessError
from repro.memory.map import MemoryLayout

ADDRESS_SPACE = 0x10000


class AccessKind(enum.Enum):
    FETCH = "fetch"  # instruction/extension word fetch
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One bus transaction, as seen by the hardware monitors."""

    kind: AccessKind
    addr: int
    value: int
    size: int  # 1 or 2 bytes
    pc: int  # PC of the instruction issuing the access
    prev: Optional[int] = None  # pre-write contents (writes only; for rollback)

    def __str__(self):
        return f"{self.kind.value.upper():5s} 0x{self.addr:04x} = 0x{self.value:04x} (pc=0x{self.pc:04x})"


class Bus:
    """Flat memory plus peripheral dispatch and access recording."""

    def __init__(self, layout: Optional[MemoryLayout] = None):
        self.layout = layout or MemoryLayout.default()
        self.mem = bytearray(ADDRESS_SPACE)
        self._read_handlers: Dict[int, Callable[[], int]] = {}
        self._write_handlers: Dict[int, Callable[[int], None]] = {}
        self.trace: List[Access] = []
        self.recording = True
        # PC context for access records; the CPU sets this each step.
        self.current_pc = 0

    # ---- peripheral registration ------------------------------------------

    def register_peripheral_word(self, addr, read=None, write=None):
        """Attach handlers for a 16-bit peripheral register at *addr*."""
        if not self.layout.in_peripheral(addr):
            raise MemoryAccessError(f"0x{addr:04x} is not in the peripheral region")
        if read is not None:
            self._read_handlers[addr] = read
        if write is not None:
            self._write_handlers[addr] = write

    # ---- raw (monitor-invisible) access for loaders and test harnesses ----

    def load_bytes(self, addr, data):
        """Back-door write used by the image loader / attack harness.

        This models an external agent (programmer, DMA-capable attacker)
        rather than a CPU bus transaction, so it is not traced.  Security
        arguments never rely on it: CASU guards *CPU-issued* writes.
        """
        end = addr + len(data)
        if end > ADDRESS_SPACE:
            raise MemoryAccessError("image does not fit in the address space")
        self.mem[addr:end] = data

    def peek_word(self, addr):
        self._check(addr, 2)
        return self.mem[addr] | (self.mem[addr + 1] << 8)

    def peek_byte(self, addr):
        self._check(addr, 1)
        return self.mem[addr]

    def poke_word(self, addr, value):
        self._check(addr, 2)
        self.mem[addr] = value & 0xFF
        self.mem[addr + 1] = (value >> 8) & 0xFF

    # ---- CPU-visible access -------------------------------------------------

    def fetch_word(self, addr):
        """Instruction-stream fetch (monitored as FETCH)."""
        value = self._read_word_raw(addr)
        self._record(AccessKind.FETCH, addr, value, 2)
        return value

    def read_word(self, addr):
        if addr in self._read_handlers:
            value = self._read_handlers[addr]() & 0xFFFF
            self.poke_word(addr, value)  # keep backing store coherent
        else:
            value = self._read_word_raw(addr)
        self._record(AccessKind.READ, addr, value, 2)
        return value

    def read_byte(self, addr):
        base = addr & ~1
        if base in self._read_handlers:
            word = self._read_handlers[base]() & 0xFFFF
            self.poke_word(base, word)
        self._check(addr, 1)
        value = self.mem[addr]
        self._record(AccessKind.READ, addr, value, 1)
        return value

    def write_word(self, addr, value):
        value &= 0xFFFF
        self._record(AccessKind.WRITE, addr, value, 2, prev=self.peek_word(addr))
        self.poke_word(addr, value)
        if addr in self._write_handlers:
            self._write_handlers[addr](value)

    def write_byte(self, addr, value):
        value &= 0xFF
        self._check(addr, 1)
        self._record(AccessKind.WRITE, addr, value, 1, prev=self.mem[addr])
        self.mem[addr] = value
        base = addr & ~1
        if base in self._write_handlers:
            self._write_handlers[base](self.peek_word(base))

    # ---- internals -----------------------------------------------------------

    def _read_word_raw(self, addr):
        self._check(addr, 2)
        return self.mem[addr] | (self.mem[addr + 1] << 8)

    def _check(self, addr, size):
        if addr < 0 or addr + size > ADDRESS_SPACE:
            raise MemoryAccessError(f"access at 0x{addr:04x} outside address space")

    def _record(self, kind, addr, value, size, prev=None):
        if self.recording:
            self.trace.append(Access(kind, addr, value, size, self.current_pc, prev))

    def rollback_writes(self, accesses):
        """Undo the WRITE accesses of one step (hardware reset semantics:
        a violating instruction never commits)."""
        for access in reversed(accesses):
            if access.kind is not AccessKind.WRITE or access.prev is None:
                continue
            if access.size == 2:
                self.poke_word(access.addr, access.prev)
            else:
                self.mem[access.addr] = access.prev & 0xFF

    def drain_trace(self):
        """Return and clear the accesses recorded since the last drain."""
        trace, self.trace = self.trace, []
        return trace
