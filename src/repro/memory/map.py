"""Address-space layout of the simulated device.

The default layout mirrors a small openMSP430 configuration with the two
EILID additions: a secure ROM bank for EILIDsw/CASU update code and a
secure DMEM bank for the shadow stack and indirect-call table.

All bounds are configurable -- the paper notes the shadow-stack size is
"configurable based on memory constraints and software complexity".
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import LinkError


class RegionKind(enum.Enum):
    PERIPHERAL = "peripheral"
    DMEM = "dmem"  # RAM: writable, never executable (W xor X)
    SECURE_DMEM = "secure-dmem"  # shadow stack: EILIDsw-only access
    SECURE_ROM = "secure-rom"  # EILIDsw + CASU update routine
    PMEM = "pmem"  # flash: executable, writable only via update
    IVT = "ivt"  # interrupt vector table (top of PMEM)


@dataclass(frozen=True)
class Region:
    name: str
    kind: RegionKind
    start: int
    end: int  # inclusive

    def __contains__(self, addr):
        return self.start <= addr <= self.end

    @property
    def size(self):
        return self.end - self.start + 1

    def __str__(self):
        return f"{self.name}[0x{self.start:04x}..0x{self.end:04x}]"


# Default region bounds (bytes, inclusive).
PERIPH_START, PERIPH_END = 0x0010, 0x01FF
DMEM_START, DMEM_END = 0x0200, 0x09FF  # 2 KB RAM
SECURE_DMEM_START, SECURE_DMEM_END = 0x1000, 0x10FF  # 256 B (paper Sec. V)
SECURE_ROM_START, SECURE_ROM_END = 0xA000, 0xA7FF  # 2 KB trusted ROM
PMEM_START, PMEM_END = 0xE000, 0xFFDF  # ~8 KB flash
IVT_START, IVT_END = 0xFFE0, 0xFFFF  # 16 vectors
RESET_VECTOR = 0xFFFE
NUM_VECTORS = 16


# Bits of the per-address attribute table (one byte per address).
_F_EXEC = 0x01  # PMEM or secure ROM: instruction fetch allowed
_F_PMEM = 0x02  # PMEM or IVT: immutable outside update sessions
_F_SROM = 0x04
_F_SDMEM = 0x08
_F_DMEM = 0x10
_F_PERIPH = 0x20

_KIND_FLAGS = {
    RegionKind.PERIPHERAL: _F_PERIPH,
    RegionKind.DMEM: _F_DMEM,
    RegionKind.SECURE_DMEM: _F_SDMEM,
    RegionKind.SECURE_ROM: _F_SROM | _F_EXEC,
    RegionKind.PMEM: _F_PMEM | _F_EXEC,
    RegionKind.IVT: _F_PMEM,
}


@dataclass
class MemoryLayout:
    """The set of regions plus convenience predicates used by monitors.

    The predicates sit on the hardware monitors' per-step hot path, so
    they are answered from a precomputed 64 KB attribute table (one
    lookup per query) rather than a region scan.  The region list is
    fixed at construction time.
    """

    regions: List[Region] = field(default_factory=list)

    def __post_init__(self):
        flags = bytearray(0x10000)
        for region in self.regions:
            bits = _KIND_FLAGS[region.kind]
            span = flags[region.start:region.end + 1]
            if any(span):  # overlapping regions: merge byte-wise
                for addr in range(region.start, region.end + 1):
                    flags[addr] |= bits
            else:
                flags[region.start:region.end + 1] = bytes([bits]) * len(span)
        self._flags = flags

    @staticmethod
    def default(shadow_stack_bytes=256):
        """Build the standard EILID layout.

        *shadow_stack_bytes* resizes the secure DMEM bank (the paper's
        configurability knob); it must be a positive multiple of 2.
        """
        if shadow_stack_bytes <= 0 or shadow_stack_bytes % 2:
            raise LinkError("shadow stack size must be a positive even byte count")
        secure_end = SECURE_DMEM_START + shadow_stack_bytes - 1
        if secure_end >= SECURE_ROM_START:
            raise LinkError("shadow stack overlaps secure ROM")
        return MemoryLayout(
            regions=[
                Region("peripherals", RegionKind.PERIPHERAL, PERIPH_START, PERIPH_END),
                Region("dmem", RegionKind.DMEM, DMEM_START, DMEM_END),
                Region(
                    "secure-dmem",
                    RegionKind.SECURE_DMEM,
                    SECURE_DMEM_START,
                    secure_end,
                ),
                Region("secure-rom", RegionKind.SECURE_ROM, SECURE_ROM_START, SECURE_ROM_END),
                Region("pmem", RegionKind.PMEM, PMEM_START, PMEM_END),
                Region("ivt", RegionKind.IVT, IVT_START, IVT_END),
            ]
        )

    # ---- lookup ----------------------------------------------------------

    def region_at(self, addr) -> Optional[Region]:
        for region in self.regions:
            if addr in region:
                return region
        return None

    def region_named(self, name) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    # ---- predicates used by the hardware monitors -------------------------

    def is_executable(self, addr):
        """W+X policy: only PMEM, IVT-adjacent flash and secure ROM execute."""
        return 0 <= addr <= 0xFFFF and self._flags[addr] & _F_EXEC != 0

    def in_pmem(self, addr):
        return 0 <= addr <= 0xFFFF and self._flags[addr] & _F_PMEM != 0

    def in_secure_rom(self, addr):
        return 0 <= addr <= 0xFFFF and self._flags[addr] & _F_SROM != 0

    def in_secure_dmem(self, addr):
        return 0 <= addr <= 0xFFFF and self._flags[addr] & _F_SDMEM != 0

    def in_dmem(self, addr):
        return 0 <= addr <= 0xFFFF and self._flags[addr] & _F_DMEM != 0

    def in_peripheral(self, addr):
        return 0 <= addr <= 0xFFFF and self._flags[addr] & _F_PERIPH != 0

    # ---- common handles ----------------------------------------------------

    @property
    def dmem(self):
        return self.region_named("dmem")

    @property
    def secure_dmem(self):
        return self.region_named("secure-dmem")

    @property
    def secure_rom(self):
        return self.region_named("secure-rom")

    @property
    def pmem(self):
        return self.region_named("pmem")

    @property
    def ivt(self):
        return self.region_named("ivt")

    @property
    def stack_top(self):
        """Initial stack pointer: one past the end of DMEM (grows down)."""
        return self.dmem.end + 1

    def vector_address(self, index):
        if not 0 <= index < NUM_VECTORS:
            raise LinkError(f"vector index {index} out of range")
        return IVT_START + 2 * index
