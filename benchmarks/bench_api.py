"""Facade overhead gate: repro.api vs direct Device construction.

The public scenario API must stay a zero-cost abstraction on the hot
path: a ``Session`` run is spec validation + a cached firmware lookup +
the very same ``Device`` inner loop.  This bench drives the
monitored-run microbench (security="casu") both ways and asserts the
facade adds < 5% wall-clock overhead.
"""

import gc
import time

from repro.api import FirmwareSpec, LimitsSpec, ScenarioSpec, Session
from repro.api.firmware import build_firmware
from repro.device import build_device

FACADE_OVERHEAD_CEILING = 1.05  # the satellite gate: < 5%

STEPS = 20_000
REPS = 7

# The step-loop shapes the Table IV apps hit (no DONE write: the run
# is bounded by max_steps on both paths).
_HOT_LOOP = """
    .text
    .global main
main:
    mov #0, r10
loop:
    add #1, r10
    mov r10, &0x0200
    add &0x0200, r11
    bit #1, r11
    jnz odd
    xor #0x5a5a, r12
odd:
    cmp #0, r10
    jnz loop
    jmp loop
"""

_FIRMWARE = FirmwareSpec(kind="asm", source=_HOT_LOOP, variant="original",
                         name="bench-api", link_rom=False)


def _spec():
    return ScenarioSpec(
        name="bench-api",
        firmware=_FIRMWARE,
        security="casu",
        limits=LimitsSpec(max_cycles=100_000_000, max_steps=STEPS),
    )


def _direct_run(program):
    device = build_device(program, security="casu")
    result = device.run_steps(STEPS, stop_on_done=True)
    assert result.steps == STEPS
    return result


def _facade_run():
    outcome = Session(_spec()).run()
    assert outcome.steps == STEPS
    return outcome


def _timed(fn, *args):
    started = time.perf_counter()
    fn(*args)
    return time.perf_counter() - started


def test_bench_facade_overhead(benchmark):
    program = build_firmware(_FIRMWARE).program
    _direct_run(program)  # warm both paths (decode cache is per-device,
    _facade_run()         # but parse/build caches are process-wide)

    # Interleave the two paths so machine-load drift hits both equally,
    # and compare best-of (the runs execute the identical inner loop).
    direct = facade = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            direct = min(direct, _timed(_direct_run, program))
            facade = min(facade, _timed(_facade_run))
    finally:
        if gc_was_enabled:
            gc.enable()
    ratio = facade / direct
    benchmark.extra_info["direct_s"] = round(direct, 4)
    benchmark.extra_info["facade_s"] = round(facade, 4)
    benchmark.extra_info["ratio"] = round(ratio, 4)
    benchmark.pedantic(_facade_run, rounds=1, iterations=1)
    print(f"\nfacade {facade:.4f}s vs direct {direct:.4f}s "
          f"(ratio {ratio:.3f}, monitored {STEPS} steps)")
    assert ratio < FACADE_OVERHEAD_CEILING, (
        f"facade run is {100 * (ratio - 1):.1f}% slower than direct "
        f"Device construction (gate: <5%)")
