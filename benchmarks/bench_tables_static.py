"""Tables I-III regeneration benchmarks (static tables; the benchmark
verifies the generators and prints each table once)."""

from repro.eval import (
    generate_table1,
    generate_table2,
    generate_table3,
    render_table1,
    render_table2,
    render_table3,
)


def test_bench_table1(benchmark, capsys):
    rows = benchmark(generate_table1)
    assert len(rows) == 10
    with capsys.disabled():
        print("\n" + render_table1())


def test_bench_table2(benchmark, capsys):
    rows = benchmark(generate_table2)
    assert len(rows) == 3
    with capsys.disabled():
        print("\n" + render_table2())


def test_bench_table3(benchmark, capsys):
    rows = benchmark(generate_table3)
    assert len(rows) == 3
    with capsys.disabled():
        print("\n" + render_table3())
