"""Control-plane gates: the daemon at fleet scale.

One 10,000-device fleet persisted over two registry shards, served by
:class:`repro.serve.daemon.DaemonThread`, driven end to end through
:class:`repro.serve.client.FleetClient` -- every number below crosses
the real HTTP path, not the in-process seam:

* ``POST /attest`` over a 2,500-device sample must clear 500
  concurrent attests/s -- the async pump fanning HMAC exchanges across
  its executor, one durability flush per request;
* ``GET /campaigns/<id>/events`` must deliver its first event within
  1s of emission and surface a wave commit while the campaign is still
  running (the stream is live status, not a post-hoc transcript).

Reference numbers (1-core dev container): sync attest sweeps run
~8-10k devices/s, so the 500/s floor only trips if the control plane
itself (HTTP + asyncio + shard routing) eats an order of magnitude.

Emits ``BENCH_serve.json`` with a seeded ``history`` list folding in
previous runs, like the other trajectory artifacts.
"""

import gc
import json
import os
import time

import pytest

from repro.fleet.simulation import FleetSimulation
from repro.serve import DaemonThread, FleetClient, open_sharded_store

FLEET_SIZE = 10_000
SHARDS = 2
ATTEST_SAMPLE = 2_500
ATTEST_FLOOR_PER_SEC = 500
WAVES = (0.02, 0.25, 1.0)
FIRST_EVENT_LATENCY_CEILING_S = 1.0
ARTIFACT = "BENCH_serve.json"
HISTORY_LIMIT = 20

# Filled by the gates, written by the last one.
_RESULTS = {}


@pytest.fixture(scope="module")
def control_plane(tmp_path_factory):
    base = tmp_path_factory.mktemp("serve-bench")
    store = open_sharded_store(
        [str(base / f"shard-{n}.jsonl") for n in range(SHARDS)])
    # The build allocates one simulated device per record and no
    # garbage; keep the collector out of it, then freeze the result.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        fleet = FleetSimulation(size=FLEET_SIZE, store=store)
    finally:
        gc.freeze()
        if gc_was_enabled:
            gc.enable()
    thread = DaemonThread(fleet)
    try:
        yield fleet, FleetClient(thread.url, timeout=600.0)
    finally:
        thread.stop()
        store.close()


def _seeded_history(entry):
    """Fold previous runs' entries into a bounded history list."""
    history = []
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, encoding="utf-8") as handle:
                history = json.load(handle).get("history", [])
        except (OSError, ValueError):
            history = []
    history.append(entry)
    return history[-HISTORY_LIMIT:]


def test_bench_serve_concurrent_attest_throughput(benchmark, control_plane):
    fleet, client = control_plane
    status = client.status()
    assert status["devices"] == FLEET_SIZE
    assert status["store"]["shards"] == SHARDS
    device_ids = fleet.registry.ids()[:ATTEST_SAMPLE]

    def measure():
        started = time.perf_counter()
        doc = client.attest(device_ids)
        elapsed = time.perf_counter() - started
        assert doc["ok"] and doc["attested"] == len(device_ids)
        return len(device_ids) / elapsed

    rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["devices"] = FLEET_SIZE
    benchmark.extra_info["attest_sample"] = ATTEST_SAMPLE
    benchmark.extra_info["attests_per_sec"] = round(rate, 1)
    _RESULTS["attests_per_sec"] = round(rate, 1)
    assert rate >= ATTEST_FLOOR_PER_SEC, (
        f"control-plane attest ran {rate:.0f}/s "
        f"(floor {ATTEST_FLOOR_PER_SEC}/s)")


def test_bench_serve_campaign_stream_is_live(benchmark, control_plane):
    fleet, client = control_plane

    def measure():
        doc = client.rollout(1, waves=list(WAVES))
        campaign_id = doc["campaign"]
        assert campaign_id and doc["running"]
        first_latency = None
        commit_seen_live = False
        kinds = []
        for event in client.campaign_events(campaign_id, timeout=600.0):
            arrived = time.time()
            if first_latency is None:
                first_latency = arrived - event["ts"]
            if event["kind"] == "wave-commit" and not commit_seen_live:
                # Live status: the campaign must still be in flight
                # when its first wave commit reaches a subscriber.
                commit_seen_live = client.campaign(campaign_id)["running"]
            kinds.append(event["kind"])
        final = client.wait_campaign(campaign_id)
        return first_latency, commit_seen_live, kinds, final

    first_latency, commit_seen_live, kinds, final = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    report = final["report"]
    assert report["status"] == "complete"
    assert report["applied"] == FLEET_SIZE
    assert kinds[0] == "campaign-start" and kinds[-1] == "campaign-end"
    assert kinds.count("wave-commit") == len(WAVES)
    assert fleet.registry.version_histogram() == {1: FLEET_SIZE}

    benchmark.extra_info["first_event_latency_ms"] = \
        round(first_latency * 1e3, 1)
    benchmark.extra_info["rollout_devices_per_sec"] = \
        round(report["devices_per_sec"])
    benchmark.extra_info["wave_commit_seen_live"] = commit_seen_live

    entry = {
        "ts": round(time.time(), 3),
        "devices": FLEET_SIZE,
        "shards": SHARDS,
        "attests_per_sec": _RESULTS.get("attests_per_sec"),
        "rollout_devices_per_sec": round(report["devices_per_sec"]),
        "first_event_latency_ms": round(first_latency * 1e3, 1),
    }
    doc = {
        "schema": "eilid.bench.serve",
        "version": 1,
        "fleet": {"devices": FLEET_SIZE, "shards": SHARDS,
                  "waves": list(WAVES)},
        "attests_per_sec": _RESULTS.get("attests_per_sec"),
        "rollout": report,
        "history": _seeded_history(entry),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)

    assert first_latency <= FIRST_EVENT_LATENCY_CEILING_S, (
        f"first streamed event arrived {first_latency:.2f}s after "
        f"emission (ceiling {FIRST_EVENT_LATENCY_CEILING_S}s)")
    assert commit_seen_live, (
        "no wave-commit reached the stream while the campaign was "
        "still running")
