"""Figure 10 regeneration: hardware overhead comparison."""

from repro.eval.figure10 import generate_figure10, render_figure10


def test_bench_figure10(benchmark, capsys):
    data = benchmark(generate_figure10)
    with capsys.disabled():
        print("\n" + render_figure10(data))
    index = data.names.index("EILID")
    assert data.luts[index] == 99 and data.registers[index] == 34
    assert round(data.eilid_lut_pct, 1) == 5.3
    assert round(data.eilid_register_pct, 1) == 4.9
