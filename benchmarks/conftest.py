"""Benchmark fixtures: shared builder so library parses are cached."""

import pytest

from repro.eilid.iterbuild import IterativeBuild


@pytest.fixture(scope="session")
def builder():
    return IterativeBuild()
