"""Fault-sweep throughput gates for the snapshot-shipping backends.

A :class:`repro.faults.FaultCampaign` runs each fault on a freshly
restored snapshot, so sweep throughput is the snapshot codec's real
price: serialise, ship, restore, run, grade.  The workload is a tiny
hand-written firmware (a few dozen cycles to DONE) so the gate
measures the campaign machinery, not the victim's runtime:

* the process backend must clear an absolute faults/s floor
  everywhere -- the shard path (snapshot dict through pickle, worker
  rebuild + restore) regressing shows up even single-core;
* on >= 4 usable cores (the CI runners) the process backend must
  clear 1.5x the thread backend, which the GIL pins to one core's
  worth of simulated-CPU work -- same arming rule as bench_fleet;
* thread and process sweeps of the same seeded plan must agree
  outcome-for-outcome (the acceptance invariant rides the bench).

Emits ``BENCH_faults.json`` -- a consolidated artifact with a seeded
``history`` list folding in previous runs of the file, so the perf
trajectory is non-empty from the first CI run (uploaded next to the
fleet-trajectory artifacts).

Reference numbers (1-core dev container): ~150 faults/s thread, ~130
faults/s process (worker spawn amortised over one 48-fault plan); the
floor is set at 15 to stay immune to runner variance.
"""

import json
import os
import time

from repro.api.firmware import build_firmware
from repro.api.spec import FirmwareSpec
from repro.cfg import recover_cfg
from repro.faults import FaultCampaign, enumerate_sites, expand_plan

# A short branchy loop that latches its checksum as the DONE value and
# streams partial sums to GPIO (so escape grading has real outputs).
_BENCH_ASM = """
    .text
    .global main
main:
    mov #0, r10
    mov #0, r11
loop:
    add #1, r10
    add r10, r11
    mov r11, &0x0010
    bit #1, r10
    jnz skip
    xor #0x0f0f, r12
skip:
    cmp #32, r10
    jnz loop
    mov r11, &0x0070
parked:
    jmp parked
"""

SPEC = FirmwareSpec(kind="asm", source=_BENCH_ASM, name="fault-bench",
                    variant="original", link_rom=False)
FAULTS = 48
SEED = 11
WORKERS = 4
# Absolute floor on the process backend (reference ~130 faults/s on
# one core); only a broken shard path gets anywhere near it.
PROCESS_FLOOR_FAULTS_PER_SEC = 15
SPEEDUP_FLOOR = 1.5
ARTIFACT = "BENCH_faults.json"
HISTORY_LIMIT = 20


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _plan():
    cfg = recover_cfg(build_firmware(SPEC).program, name="fault-bench")
    sites = enumerate_sites(cfg)
    assert sites, "bench firmware produced no fault sites"
    return expand_plan(sites, seed=SEED, count=FAULTS, name="fault-bench")


def _sweep(backend, plan):
    report = FaultCampaign(SPEC, plan, profiles=("none",), backend=backend,
                           workers=WORKERS).run()
    assert report.tally("none").total == FAULTS
    return report


def _seeded_history(entry):
    """Fold previous runs' entries into a bounded history list."""
    history = []
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, encoding="utf-8") as handle:
                history = json.load(handle).get("history", [])
        except (OSError, ValueError):
            history = []
    history.append(entry)
    return history[-HISTORY_LIMIT:]


def test_bench_fault_sweep_backends(benchmark):
    plan = _plan()

    def measure():
        return _sweep("thread", plan), _sweep("process", plan)

    thread, process = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Same seed, same tallies -- sharding must not change the science.
    assert [t.to_dict() for t in thread.tallies] == \
           [t.to_dict() for t in process.tallies]
    assert thread.outcomes == process.outcomes

    cores = _usable_cores()
    speedup = (process.faults_per_sec / thread.faults_per_sec
               if thread.faults_per_sec else 0.0)
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["thread_faults_per_sec"] = \
        round(thread.faults_per_sec, 1)
    benchmark.extra_info["process_faults_per_sec"] = \
        round(process.faults_per_sec, 1)
    benchmark.extra_info["process_speedup"] = round(speedup, 2)

    entry = {
        "ts": round(time.time(), 3),
        "faults": FAULTS,
        "seed": SEED,
        "thread_faults_per_sec": round(thread.faults_per_sec, 1),
        "process_faults_per_sec": round(process.faults_per_sec, 1),
        "process_speedup": round(speedup, 2),
        "cores": cores,
    }
    doc = {
        "schema": "eilid.bench.faults",
        "version": 1,
        "plan": {"name": plan.name, "seed": plan.seed, "faults": len(plan)},
        "thread": thread.to_dict(),
        "process": process.to_dict(),
        "history": _seeded_history(entry),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)

    assert process.faults_per_sec >= PROCESS_FLOOR_FAULTS_PER_SEC
    if cores >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"process backend {process.faults_per_sec:.1f} faults/s is "
            f"only {speedup:.2f}x the thread backend's "
            f"{thread.faults_per_sec:.1f} faults/s on {cores} cores "
            f"(need >= {SPEEDUP_FLOOR}x)")
