"""Attack-matrix regeneration: the security half of the evaluation."""

import pytest

from repro.attacks import (
    AttackOutcome,
    code_injection,
    interrupt_context_tamper,
    pointer_hijack,
    return_address_smash,
)

ATTACKS = [return_address_smash, interrupt_context_tamper, pointer_hijack,
           code_injection]


@pytest.mark.parametrize("attack", ATTACKS, ids=lambda a: a.__name__)
def test_bench_attack_on_eilid(benchmark, attack):
    result = benchmark.pedantic(attack, args=("eilid",), rounds=1, iterations=1)
    assert result.outcome is AttackOutcome.RESET
    benchmark.extra_info["violation"] = str(result.violations[0].reason.value)


def test_print_attack_matrix(capsys):
    rows = []
    for attack in ATTACKS:
        outcomes = [attack(security).outcome.value for security in ("none", "casu", "eilid")]
        rows.append((attack.__name__, *outcomes))
    with capsys.disabled():
        print("\nattack matrix (baseline / CASU / EILID):")
        for name, a, b, c in rows:
            print(f"  {name:28s} {a:10s} {b:10s} {c}")
    assert all(row[3] == "reset" for row in rows)
