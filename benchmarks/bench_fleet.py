"""Fleet-scale baseline: devices/sec the verifier can drive.

Two numbers later scaling PRs (sharding, async transports,
persistence) measure themselves against:

* enroll + staged rollout throughput for a 1000-device fleet -- the
  full authenticated path per device (key derivation, enrollment
  handshake, per-device package MAC, device-side verify, simulated
  ROM copy on the device CPU, MAC'd ack);
* attestation round-trips/sec -- heartbeat evidence collection.

The interpreter hot-path PR (decoded-instruction cache + zero-alloc
step loop) lifted the reference machine from ~500 to ~1000+ dev/s on
the full enroll+rollout path; the CI floor is set at 400 dev/s (4x the
original bar) to stay immune to runner-hardware variance while still
catching any real regression of the batched device loop.
"""

import time

from repro.fleet import CampaignStatus, FleetSimulation

FLEET_SIZE = 1000


def enroll_and_rollout():
    started = time.perf_counter()
    fleet = FleetSimulation(size=FLEET_SIZE)
    report = fleet.rollout(version=1)
    elapsed = time.perf_counter() - started
    return fleet, report, elapsed


def test_bench_fleet_rollout_1k(benchmark):
    fleet, report, elapsed = benchmark.pedantic(
        enroll_and_rollout, rounds=1, iterations=1)
    assert report.status is CampaignStatus.COMPLETE
    assert report.applied == FLEET_SIZE
    devices_per_sec = FLEET_SIZE / elapsed
    benchmark.extra_info["devices"] = FLEET_SIZE
    benchmark.extra_info["enroll_rollout_devices_per_sec"] = round(devices_per_sec)
    benchmark.extra_info["rollout_devices_per_sec"] = round(report.devices_per_sec)
    # CI floor with hardware-variance margin; the reference machine does
    # ~1040 dev/s (the >=1000 dev/s target of the hot-path PR).
    assert devices_per_sec >= 400


def test_bench_fleet_attestation_roundtrips(benchmark):
    fleet = FleetSimulation(size=300)

    def sweep():
        results = fleet.attest_all()
        assert all(result.ok for result in results.values())
        return results

    started = time.perf_counter()
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    roundtrips_per_sec = len(fleet.registry) / elapsed
    benchmark.extra_info["attest_roundtrips_per_sec"] = round(roundtrips_per_sec)
    assert roundtrips_per_sec >= 100
