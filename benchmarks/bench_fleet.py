"""Fleet-scale baseline: devices/sec the verifier can drive.

Numbers later scaling PRs (async transports, distributed verifiers)
measure themselves against:

* enroll + staged rollout throughput for a 1000-device fleet -- the
  full authenticated path per device (key derivation, enrollment
  handshake, per-device package MAC, device-side verify, simulated
  ROM copy on the device CPU, MAC'd ack);
* attestation round-trips/sec -- heartbeat evidence collection;
* process-backend rollout throughput vs the thread backend: the
  thread pool serialises the simulated-CPU work under the GIL, the
  process backend shards it across workers that rebuild their
  devices from record snapshots.  On a >=4-core machine (the CI
  runners) the process backend must clear 1.5x the thread backend's
  devices/sec at 4 workers; everywhere it must clear an absolute
  floor, since the sharding overhead (snapshot, pickle, rebuild,
  merge) is real and a regression there shows up even single-core.

The interpreter hot-path PR (decoded-instruction cache + zero-alloc
step loop) lifted the reference machine from ~500 to ~1000+ dev/s on
the full enroll+rollout path; the CI floor is set at 400 dev/s (4x the
original bar) to stay immune to runner-hardware variance while still
catching any real regression of the batched device loop.
"""

import os
import time

from repro.fleet import CampaignConfig, CampaignStatus, FleetSimulation

FLEET_SIZE = 1000


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def enroll_and_rollout():
    started = time.perf_counter()
    fleet = FleetSimulation(size=FLEET_SIZE)
    report = fleet.rollout(version=1)
    elapsed = time.perf_counter() - started
    return fleet, report, elapsed


def test_bench_fleet_rollout_1k(benchmark):
    fleet, report, elapsed = benchmark.pedantic(
        enroll_and_rollout, rounds=1, iterations=1)
    assert report.status is CampaignStatus.COMPLETE
    assert report.applied == FLEET_SIZE
    devices_per_sec = FLEET_SIZE / elapsed
    benchmark.extra_info["devices"] = FLEET_SIZE
    benchmark.extra_info["enroll_rollout_devices_per_sec"] = round(devices_per_sec)
    benchmark.extra_info["rollout_devices_per_sec"] = round(report.devices_per_sec)
    # CI floor with hardware-variance margin; the reference machine does
    # ~1040 dev/s (the >=1000 dev/s target of the hot-path PR).
    assert devices_per_sec >= 400


def _rollout_devices_per_sec(backend: str, workers: int,
                             size: int = FLEET_SIZE) -> float:
    """Rollout-only throughput (enrollment excluded) for one backend."""
    fleet = FleetSimulation(size=size)
    report = fleet.rollout(version=1, config=CampaignConfig(
        backend=backend, workers=workers))
    assert report.status is CampaignStatus.COMPLETE
    assert report.applied == size
    return report.devices_per_sec


def test_bench_fleet_process_backend_speedup(benchmark):
    """The sharding gate: process >= 1.5x thread dev/s at 4 workers.

    The ratio assertion arms only on machines with >= 4 usable cores
    (the CI runners qualify): below that the GIL-free backend has
    nothing to parallelise onto and the honest expectation is a
    *slowdown* -- there the absolute floor still catches regressions
    in the sharding path itself (snapshot, pickle, rebuild, merge).
    """
    workers = 4

    def measure():
        thread = _rollout_devices_per_sec("thread", workers)
        process = _rollout_devices_per_sec("process", workers)
        return thread, process

    thread_dps, process_dps = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    cores = _usable_cores()
    speedup = process_dps / thread_dps if thread_dps else 0.0
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["thread_devices_per_sec"] = round(thread_dps)
    benchmark.extra_info["process_devices_per_sec"] = round(process_dps)
    benchmark.extra_info["process_speedup"] = round(speedup, 2)
    # Absolute floor: the reference 1-core container does ~780 dev/s
    # through the full shard path; 250 leaves hardware-variance room.
    assert process_dps >= 250
    if cores >= 4:
        assert speedup >= 1.5, (
            f"process backend {process_dps:.0f} dev/s is only "
            f"{speedup:.2f}x the thread backend's {thread_dps:.0f} "
            f"dev/s on {cores} cores (need >= 1.5x)")


def test_bench_fleet_attestation_roundtrips(benchmark):
    fleet = FleetSimulation(size=300)

    def sweep():
        results = fleet.attest_all()
        assert all(result.ok for result in results.values())
        return results

    started = time.perf_counter()
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    roundtrips_per_sec = len(fleet.registry) / elapsed
    benchmark.extra_info["attest_roundtrips_per_sec"] = round(roundtrips_per_sec)
    assert roundtrips_per_sec >= 100
