"""Sec. VI micro numbers: store/check path cost per protected call."""

from repro.eval.microbench import measure_micro, render_micro


def test_bench_micro_paths(benchmark, capsys):
    result = benchmark.pedantic(measure_micro, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + render_micro(result))
    benchmark.extra_info["store_cycles"] = result.store_cycles
    benchmark.extra_info["check_cycles"] = result.check_cycles
    # Paper shape: check > store, ratio ~1.14x, per-op cost fixed.
    assert result.check_cycles > result.store_cycles
    assert 1.0 < result.check_to_store_ratio < 1.5
