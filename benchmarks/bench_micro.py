"""Sec. VI micro numbers plus interpreter hot-path throughput floors.

Two families of benchmarks:

* the paper's per-protected-call store/check cycle attribution
  (:mod:`repro.eval.microbench`);
* interpreter throughput gates for the decoded-instruction-cache PR:
  instructions/sec on the step hot path, with a machine-independent
  assertion that the cached interpreter is >= 2x the uncached one on
  the same program, plus absolute floors with CI-noise margin.

Reference numbers (container this PR was developed in):

* raw ``Cpu.step`` loop: ~94k instr/s uncached (pre-PR baseline),
  ~380k instr/s cached;
* monitored device step (``security="casu"``): ~38k -> ~118k instr/s.
"""

import gc
import time

from repro.device import build_device
from repro.eval.microbench import measure_micro, render_micro
from repro.obs.metrics import METRICS
from repro.toolchain import link, parse_source

# Absolute floors, far below the reference machine so CI noise cannot
# trip them (reference: ~380k raw / ~118k monitored).
RAW_FLOOR_IPS = 120_000
MONITORED_FLOOR_IPS = 40_000
# The tentpole gate: cached vs. uncached on the same machine.
CACHE_SPEEDUP_FLOOR = 2.0
# The observability gate: metrics instrumentation sits at the
# run_steps *batch* boundary (one span + two counter bumps per call,
# never inside the step loop), so enabling it may cost at most 2%
# against the disabled path's single attribute check.
INSTRUMENTATION_OVERHEAD_CEILING = 1.02
# The snapshot gate: Device.snapshot() on an idle device is a pure
# state walk (registers, page-level memory delta, peripheral dicts) --
# it must stay a rounding error next to actually running a batch, or
# checkpoint-heavy fault sweeps would pay for it per fault.
SNAPSHOT_COST_CEILING = 0.05
# Once-per-request daemon accounting as a fraction of one real
# fleet-attest request through the control plane's dispatch seam.
SERVE_ACCOUNTING_COST_CEILING = 0.02

# A loop mixing register, absolute and immediate operands, conditional
# and unconditional jumps -- the step-loop shapes the Table IV apps hit.
_HOT_LOOP = """
    .text
__start:
    mov #0x0a00, r1
    mov #0, r10
loop:
    add #1, r10
    mov r10, &0x0200
    add &0x0200, r11
    bit #1, r11
    jnz odd
    xor #0x5a5a, r12
odd:
    cmp #0, r10
    jnz loop
    jmp loop
    .vector 15, __start
"""


def _hot_program():
    return link([parse_source(_HOT_LOOP, "hot.s")], name="hot")


def _device_ips(program, security, steps, decode_cache=None):
    device = build_device(program, security=security,
                          decode_cache=decode_cache)
    started = time.perf_counter()
    result = device.run_steps(steps, stop_on_done=False)
    elapsed = time.perf_counter() - started
    assert result.steps == steps
    return steps / elapsed


def test_bench_micro_paths(benchmark, capsys):
    result = benchmark.pedantic(measure_micro, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + render_micro(result))
    benchmark.extra_info["store_cycles"] = result.store_cycles
    benchmark.extra_info["check_cycles"] = result.check_cycles
    # Paper shape: check > store, ratio ~1.14x, per-op cost fixed.
    assert result.check_cycles > result.store_cycles
    assert 1.0 < result.check_to_store_ratio < 1.5


def test_bench_interpreter_throughput(benchmark):
    """Instructions/sec floors on the unmonitored and monitored paths."""
    program = _hot_program()

    def measure():
        return (_device_ips(program, "none", 120_000),
                _device_ips(program, "casu", 80_000))

    raw_ips, monitored_ips = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["raw_instr_per_sec"] = round(raw_ips)
    benchmark.extra_info["monitored_instr_per_sec"] = round(monitored_ips)
    assert raw_ips >= RAW_FLOOR_IPS
    assert monitored_ips >= MONITORED_FLOOR_IPS


def test_bench_decode_cache_speedup(benchmark):
    """The decoded-instruction cache must keep a >=2x edge over the
    uncached interpreter on the same machine and program (the PR's
    acceptance gate, immune to CI hardware variance)."""
    program = _hot_program()
    steps = 80_000

    def measure():
        uncached = _device_ips(program, "none", steps, decode_cache=False)
        cached = _device_ips(program, "none", steps, decode_cache=True)
        return cached, uncached

    cached, uncached = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = cached / uncached
    benchmark.extra_info["cached_instr_per_sec"] = round(cached)
    benchmark.extra_info["uncached_instr_per_sec"] = round(uncached)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= CACHE_SPEEDUP_FLOOR


def test_bench_instrumentation_overhead(benchmark):
    """Metrics on vs. off around the batched step loop, interleaved
    min-of-7 (same de-noising shape as bench_api): the per-batch span
    + counters must stay under the 2% ceiling, proving the
    instrumentation never entered the per-step hot path."""
    program = _hot_program()
    steps = 60_000

    def measure():
        enabled_best = disabled_best = 0.0
        was_enabled = METRICS.enabled
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(7):
                METRICS.enable(False)
                disabled_best = max(disabled_best,
                                    _device_ips(program, "none", steps))
                METRICS.enable(True)
                enabled_best = max(enabled_best,
                                   _device_ips(program, "none", steps))
        finally:
            METRICS.enable(was_enabled)
            if gc_was_enabled:
                gc.enable()
        return enabled_best, disabled_best

    enabled_ips, disabled_ips = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    overhead = disabled_ips / enabled_ips
    benchmark.extra_info["enabled_instr_per_sec"] = round(enabled_ips)
    benchmark.extra_info["disabled_instr_per_sec"] = round(disabled_ips)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    assert overhead <= INSTRUMENTATION_OVERHEAD_CEILING, (
        f"metrics-enabled batched stepping is {overhead:.4f}x slower "
        f"than disabled (ceiling {INSTRUMENTATION_OVERHEAD_CEILING})")


def test_bench_snapshot_overhead(benchmark):
    """``Device.snapshot()`` on an idle (not currently stepping)
    device must cost <= 5% of a ``run_steps`` batch, interleaved
    min-of-7.  The device has real dirty state to walk -- the hot
    loop has been writing DMEM all along -- so the page-delta path is
    measured doing actual work, not short-circuiting on a pristine
    memory image."""
    program = _hot_program()
    steps = 60_000
    device = build_device(program, security="none")

    def measure():
        batch_best = snapshot_best = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(7):
                started = time.perf_counter()
                result = device.run_steps(steps, stop_on_done=False)
                batch_best = min(batch_best,
                                 time.perf_counter() - started)
                assert result.steps == steps
                started = time.perf_counter()
                snapshot = device.snapshot()
                snapshot_best = min(snapshot_best,
                                    time.perf_counter() - started)
                assert snapshot.to_dict()["memory"]  # dirty pages walked
        finally:
            if gc_was_enabled:
                gc.enable()
        return snapshot_best, batch_best

    snapshot_s, batch_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    cost = snapshot_s / batch_s
    benchmark.extra_info["snapshot_ms"] = round(snapshot_s * 1e3, 3)
    benchmark.extra_info["run_steps_batch_ms"] = round(batch_s * 1e3, 3)
    benchmark.extra_info["snapshot_cost_of_batch"] = round(cost, 4)
    assert cost <= SNAPSHOT_COST_CEILING, (
        f"snapshot() costs {cost:.4f} of a {steps}-step batch "
        f"(ceiling {SNAPSHOT_COST_CEILING})")


def test_bench_alert_engine_disabled_path_overhead(benchmark):
    """Event emission with a *disabled* alert engine attached vs. no
    engine at all, interleaved min-of-7.  A disabled engine never
    subscribes, so the only possible cost is the bus's empty-tuple
    check -- the ceiling pins alerting-off at <= 2% of the bare
    emission path (the fleet layers emit per offer/quarantine, so
    this sits on the campaign hot path)."""
    from repro.obs import AlertEngine, MemoryEventLog

    emissions = 20_000

    def _emissions_per_sec(with_disabled_engine):
        log = MemoryEventLog()
        if with_disabled_engine:
            AlertEngine(enabled=False).attach(log)
        started = time.perf_counter()
        for n in range(emissions):
            log.emit("offer", device="d0", campaign="c1",
                     status="applied", version=1)
        elapsed = time.perf_counter() - started
        log.close()
        return emissions / elapsed

    def measure():
        bare_best = engine_best = 0.0
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(7):
                bare_best = max(bare_best, _emissions_per_sec(False))
                engine_best = max(engine_best, _emissions_per_sec(True))
        finally:
            if gc_was_enabled:
                gc.enable()
        return bare_best, engine_best

    bare_eps, engine_eps = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = bare_eps / engine_eps
    benchmark.extra_info["bare_emissions_per_sec"] = round(bare_eps)
    benchmark.extra_info["disabled_engine_emissions_per_sec"] = \
        round(engine_eps)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    assert overhead <= INSTRUMENTATION_OVERHEAD_CEILING, (
        f"emission with a disabled alert engine is {overhead:.4f}x slower "
        f"than bare emission (ceiling {INSTRUMENTATION_OVERHEAD_CEILING})")


def test_bench_serve_request_accounting_overhead(benchmark):
    """Daemon request accounting (the ``serve.request`` span plus
    per-endpoint counters and a latency histogram) is recorded once
    per *request*, never per device.  Gate that claim the way the
    snapshot gate does: time one request's worth of accounting in a
    tight loop (stable), time a real fleet-attest dispatch through the
    socket-free ``dispatch()`` seam (best-of-5), and pin the
    accounting at <= 2% of the request -- per-device accounting would
    blow through the ceiling by the fleet-size factor."""
    import asyncio

    from repro.fleet.simulation import FleetSimulation
    from repro.serve import VerifierDaemon

    fleet = FleetSimulation(size=120, seed=3)
    daemon = VerifierDaemon(fleet)
    reps = 20_000
    requests = 3

    def _accounting_cost_s():
        """One request's accounting, amortised over a tight loop."""
        started = time.perf_counter()
        for _ in range(reps):
            req_started = time.perf_counter()
            with METRICS.span("serve.request"):
                pass
            elapsed_ms = (time.perf_counter() - req_started) * 1000.0
            METRICS.inc("serve.requests")
            METRICS.inc("serve.requests.attest")
            METRICS.observe("serve.request.attest.ms", elapsed_ms)
        return (time.perf_counter() - started) / reps

    def _request_cost_s():
        async def _drive():
            started = time.perf_counter()
            for _ in range(requests):
                response = await daemon.dispatch("POST", "/attest", {}, {})
                assert response.status == 200 and response.doc["ok"]
            return (time.perf_counter() - started) / requests

        return asyncio.run(_drive())

    def measure():
        accounting_best = request_best = float("inf")
        was_enabled = METRICS.enabled
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            METRICS.enable(True)
            for _ in range(5):
                accounting_best = min(accounting_best, _accounting_cost_s())
                request_best = min(request_best, _request_cost_s())
        finally:
            METRICS.enable(was_enabled)
            if gc_was_enabled:
                gc.enable()
            daemon.pump.close()
        return accounting_best, request_best

    accounting_s, request_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    cost = accounting_s / request_s
    benchmark.extra_info["accounting_us"] = round(accounting_s * 1e6, 3)
    benchmark.extra_info["attest_request_ms"] = round(request_s * 1e3, 3)
    benchmark.extra_info["accounting_cost_of_request"] = round(cost, 6)
    assert cost <= SERVE_ACCOUNTING_COST_CEILING, (
        f"request accounting costs {cost:.4f} of a fleet-attest request "
        f"(ceiling {SERVE_ACCOUNTING_COST_CEILING})")
