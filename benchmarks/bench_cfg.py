"""CFG subsystem baselines: recovery and trace-replay throughput.

Two numbers future scaling PRs (policy caching, incremental recovery,
batched fleet replay) measure themselves against:

* **recovery**: instructions/sec through disassemble -> blocks ->
  call graph -> policy, on the richest Table IV binary (fire_sensor,
  EILID variant: interrupts + indirect calls + the full ROM);
* **replay**: edges/sec through the verifier-side shadow-stack walk
  over a real recorded trace.

Floors are deliberately conservative (CI noise margin); the reference
machine does an order of magnitude more.
"""

import time

from repro.apps.registry import APPS
from repro.apps.runtime import build_app, run_app
from repro.cfg import TraceReplayer, policy_for_program, recover_cfg
from repro.eilid.iterbuild import IterativeBuild

RECOVERY_FLOOR_INSNS_PER_SEC = 5_000
REPLAY_FLOOR_EDGES_PER_SEC = 50_000


def test_bench_cfg_recovery(benchmark):
    builder = IterativeBuild()
    build = build_app(APPS["fire_sensor"], "eilid", builder)

    def recover():
        cfg = recover_cfg(build.program)
        policy_for_program(build.program)
        return cfg

    rounds = 5
    started = time.perf_counter()
    cfg = benchmark.pedantic(recover, rounds=rounds, iterations=1)
    elapsed = time.perf_counter() - started
    insns_per_sec = rounds * len(cfg.insns) / elapsed
    benchmark.extra_info["instructions"] = len(cfg.insns)
    benchmark.extra_info["recovery_insns_per_sec"] = round(insns_per_sec)
    assert insns_per_sec >= RECOVERY_FLOOR_INSNS_PER_SEC


def test_bench_cfg_trace_replay(benchmark):
    builder = IterativeBuild()
    run = run_app(APPS["fire_sensor"], "eilid", builder)
    assert run.done
    policy = policy_for_program(run.device.program)
    snapshot = run.device.trace_snapshot()
    replayer = TraceReplayer(policy)

    def replay():
        verdict = replayer.replay(snapshot)
        assert verdict.ok
        return verdict

    rounds = 5
    started = time.perf_counter()
    verdict = benchmark.pedantic(replay, rounds=rounds, iterations=1)
    elapsed = time.perf_counter() - started
    edges_per_sec = rounds * verdict.edges_checked / elapsed
    benchmark.extra_info["edges"] = verdict.edges_checked
    benchmark.extra_info["replay_edges_per_sec"] = round(edges_per_sec)
    assert edges_per_sec >= REPLAY_FLOOR_EDGES_PER_SEC
