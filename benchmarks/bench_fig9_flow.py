"""Fig. 9 flow: secure-state round trip through entry/body/leave, and
the ablation sweeps called out in DESIGN.md (indirect-table size and
shadow-stack capacity)."""

import pytest

from repro.device import build_device
from repro.eilid.policy import EilidPolicy
from repro.eilid.trusted_sw import TrustedSoftware
from repro.memory.map import MemoryLayout
from repro.toolchain import link, parse_source

_DRIVER = """
    .text
__start:
    mov #0x0a00, r1
__halt:
    jmp __halt
    .vector 15, __start
"""


def rom_device(policy=None):
    layout = MemoryLayout.default()
    trusted = TrustedSoftware(layout, policy or EilidPolicy())
    units = [
        parse_source(_DRIVER, "driver.s"),
        parse_source(trusted.shims_source(), "eilid_shims.s"),
        parse_source(trusted.rom_source(), "eilid_rom.s"),
    ]
    return build_device(link(units, name="fig9", layout=layout), security="eilid")


def test_bench_fig9_store_check_roundtrip(benchmark):
    """One full secure-state round trip per operation pair."""
    device = rom_device()
    device.call_routine("NS_EILID_init")

    def pair():
        assert device.call_routine("NS_EILID_store_ra", regs={6: 0xE200}) == []
        assert device.call_routine("NS_EILID_check_ra", regs={6: 0xE200}) == []

    benchmark(pair)


@pytest.mark.parametrize("functions", [2, 8, 16])
def test_bench_check_ind_scales_with_table(benchmark, functions):
    """Ablation: the linear table search costs O(#functions)."""
    policy = EilidPolicy(table_capacity=max(16, functions))
    device = rom_device(policy)
    device.call_routine("NS_EILID_init")
    for index in range(functions):
        device.call_routine("NS_EILID_store_ind", regs={6: 0xE000 + 2 * index})
    worst = 0xE000  # first-registered = last found by the backwards scan

    def check():
        assert device.call_routine("NS_EILID_check_ind", regs={6: worst}) == []

    cycles_before = device.cycle
    check()
    benchmark.extra_info["device_cycles_per_check"] = device.cycle - cycles_before
    benchmark(check)


@pytest.mark.parametrize("capacity_bytes", [64, 128, 256])
def test_shadow_capacity_vs_depth(capacity_bytes, capsys):
    """Ablation: deepest supported call chain per shadow-stack size."""
    layout = MemoryLayout.default(shadow_stack_bytes=capacity_bytes)
    policy = EilidPolicy(table_capacity=4)
    trusted = TrustedSoftware(layout, policy)
    units = [
        parse_source(_DRIVER, "driver.s"),
        parse_source(trusted.shims_source(), "eilid_shims.s"),
        parse_source(trusted.rom_source(), "eilid_rom.s"),
    ]
    device = build_device(link(units, name="cap", layout=layout), security="eilid")
    device.call_routine("NS_EILID_init")
    depth = 0
    while device.call_routine("NS_EILID_store_ra", regs={6: 0xE000}) == []:
        depth += 1
        assert depth < 1000
    expected = trusted.plan.shadow_capacity_words
    assert depth == expected
    with capsys.disabled():
        print(f"\nshadow stack {capacity_bytes}B -> depth {depth} frames before reset")
