"""Table IV regeneration: per-app build + run benchmarks.

Run with ``pytest benchmarks/ --benchmark-only``.  The session prints
the full measured-vs-paper Table IV at the end (the same rows the paper
reports: compile time, binary size, running time, and the averages).
"""

import pytest

from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.apps.runtime import run_app
from repro.eval.table4 import averages, measure_table4, render_table4
from repro.minicc import compile_c


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_bench_original_build(benchmark, name, builder):
    """Compile-time column, original variant."""
    spec = APPS[name]
    asm = compile_c(spec.c_source, spec.name)

    benchmark(builder.build_original, asm, f"{spec.name}.s")


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_bench_eilid_build(benchmark, name, builder):
    """Compile-time column, EILID variant (three-build Fig. 2 flow)."""
    spec = APPS[name]
    asm = compile_c(spec.c_source, spec.name)

    benchmark(builder.build_eilid, asm, f"{spec.name}.s")


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_bench_eilid_run(benchmark, name, builder):
    """Running-time column: simulated execution of the EILID variant.

    (The interesting number is the *device cycle count*, printed by the
    table; the wall-clock benchmark tracks simulator throughput.)
    """
    spec = APPS[name]

    def run_once():
        run = run_app(spec, "eilid", builder=builder)
        assert run.done and not run.violations
        return run.cycles

    cycles = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["device_cycles"] = cycles
    benchmark.extra_info["run_time_us_at_100MHz"] = cycles / 100.0


def test_print_table4(capsys):
    """Regenerate and print the full Table IV (measured vs paper)."""
    rows = measure_table4(repeats=3)
    table = render_table4(rows)
    avg = averages(rows)
    with capsys.disabled():
        print("\n" + table + "\n")
    # Shape assertions (the EXPERIMENTS.md acceptance bands).
    assert 5.0 < avg["run_pct"] < 10.0
    assert 7.0 < avg["size_pct"] < 16.0
    assert avg["compile_pct"] > 0
