"""Fig. 2 pipeline characterisation + the labels-vs-numeric ablation.

The paper's instrumenter needs three builds because return addresses
are numeric immediates resolved from listings.  The ablation resolves
them with assembler labels (one build) and measures what the paper's
design choice costs in compile time -- execution is cycle-identical
(asserted), so the choice is purely a toolchain trade-off.
"""


from repro.apps.registry import APPS
from repro.device import build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.eilid.policy import EilidPolicy
from repro.minicc import compile_c

SPEC = APPS["light_sensor"]


def test_bench_three_build_pipeline(benchmark, builder):
    asm = compile_c(SPEC.c_source, SPEC.name)
    result = benchmark(builder.build_eilid, asm, f"{SPEC.name}.s")
    assert result.build_count == 3


def test_bench_symbolic_single_build(benchmark):
    policy = EilidPolicy(use_symbolic_return_labels=True)
    builder = IterativeBuild(policy=policy)
    asm = compile_c(SPEC.c_source, SPEC.name)
    result = benchmark(builder.build_eilid_symbolic, asm, f"{SPEC.name}.s")
    assert result.build_count == 1


def test_ablation_equivalence(builder, capsys):
    """Both pipelines produce cycle-identical device behaviour."""
    asm = compile_c(SPEC.c_source, SPEC.name)
    paper = builder.build_eilid(asm, f"{SPEC.name}.s", verify_convergence=True)
    sym_builder = IterativeBuild(policy=EilidPolicy(use_symbolic_return_labels=True))
    sym = sym_builder.build_eilid_symbolic(asm, f"{SPEC.name}.s")

    d1 = build_device(paper.final.program, security="eilid",
                      peripherals=SPEC.make_peripherals())
    d2 = build_device(sym.final.program, security="eilid",
                      peripherals=SPEC.make_peripherals())
    r1, r2 = d1.run(), d2.run()
    assert r1.done and r2.done and r1.cycles == r2.cycles
    with capsys.disabled():
        print(f"\nFig.2 ablation: 3-build and 1-build pipelines agree at "
              f"{r1.cycles} device cycles")
