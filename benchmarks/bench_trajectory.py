"""Longitudinal trajectory: N successive campaigns over one event DB.

The other fleet benchmarks measure one campaign in one process.  This
one measures the observability PR's actual promise: a verifier that
runs *successive* campaigns over the same durable store + SQLite event
DB -- with a full process "restart" (close, reopen, restore) between
campaigns -- and can then answer the longitudinal questions from the
event DB alone, through the real ``fleet history --json`` CLI:

* per-device timeline (enroll + one offer per campaign);
* per-campaign quarantine rollup (the tampered wave shows up);
* cross-campaign devices/sec trend.

Emits ``BENCH_fleet_trajectory.json`` to the working directory (CI
uploads it as an artifact) and asserts a conservative throughput
floor: the restart + SQLite + event-log overhead is part of the
measured path, so the floor sits well under the single-campaign
bench_fleet floor.
"""

import contextlib
import io
import json
import os
import time

from repro.cli import main as cli_main
from repro.fleet import CampaignConfig, CampaignStatus, FleetSimulation
from repro.obs import METRICS, parse_prometheus, write_snapshot

FLEET_SIZE = 300
CAMPAIGNS = 3
# Campaign 2's MITM share: small enough that the campaign still
# completes under a raised failure threshold, large enough that the
# quarantine rollup has something to show.
TAMPER_FRACTION = 0.05
# Conservative: the reference machine clears ~700 dev/s through this
# path; the floor only catches a broken batch loop or a store/event
# layer gone quadratic.
TRAJECTORY_FLOOR_DPS = 100
# Successive runs of this file fold their summaries into the
# artifact's ``history`` list, so the perf trajectory is non-empty
# from the very first CI run and grows run over run.
HISTORY_LIMIT = 20


def _seeded_history(path, entry):
    """Previous runs' summaries plus this one, oldest first, bounded."""
    history = []
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                history = json.load(handle).get("history", [])
        except (OSError, ValueError):
            history = []
    history.append(entry)
    return history[-HISTORY_LIMIT:]


def _history_json(events_path, *flags):
    """Run the real CLI (``fleet history --json ...``) and parse it."""
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(["fleet", "history", "--events", events_path,
                         "--json", *flags])
    assert code == 0
    return json.loads(stdout.getvalue())


def _run_trajectory(store_path, events_path):
    """CAMPAIGNS successive rollouts, each in a "fresh process"."""
    METRICS.reset()  # the exported snapshot covers just this trajectory
    reports = []
    for number in range(1, CAMPAIGNS + 1):
        fleet = FleetSimulation(size=FLEET_SIZE, store=store_path,
                                events=events_path)
        tamper = TAMPER_FRACTION if number == 2 else 0.0
        report = fleet.rollout(
            version=number,
            config=CampaignConfig(failure_threshold=0.5),
            tamper_fraction=tamper)
        reports.append(report)
        # The restart: close the durable layers so the next iteration
        # restores from disk, exactly like a new verifier process.
        fleet.registry.flush()
        fleet.registry.store.close()
        fleet.events.close()
    return reports


def test_bench_fleet_trajectory(benchmark, tmp_path):
    store_path = str(tmp_path / "registry.db")
    events_path = str(tmp_path / "events.db")

    started = time.perf_counter()
    reports = benchmark.pedantic(
        _run_trajectory, args=(store_path, events_path),
        rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    offers = sum(report.applied + report.failed for report in reports)
    devices_per_sec = offers / elapsed
    quarantined_total = FLEET_SIZE - reports[-1].applied

    assert all(report.status is CampaignStatus.COMPLETE
               for report in reports)
    assert reports[0].applied == FLEET_SIZE
    assert 0 < reports[1].failed <= FLEET_SIZE * TAMPER_FRACTION + 1
    # Quarantined devices are out of campaign 3's manageable set.
    assert reports[2].applied == FLEET_SIZE - reports[1].failed

    # ---- the longitudinal questions, through the real CLI ----------------

    campaigns = _history_json(events_path, "--campaigns")["campaigns"]
    assert len(campaigns) == CAMPAIGNS
    tampered = campaigns[1]
    assert tampered["quarantined"] == reports[1].failed
    assert tampered["quarantine_reasons"]  # per-reason breakdown present
    assert campaigns[0]["quarantined"] == 0

    trends = _history_json(events_path, "--trends")["trends"]
    assert trends["target_versions"] == [1, 2, 3]
    assert len(trends["devices_per_sec"]) == CAMPAIGNS
    assert all(dps > 0 for dps in trends["devices_per_sec"])

    devices = _history_json(events_path)["devices"]
    assert len(devices) == FLEET_SIZE
    clean = next(device_id for device_id, entry in sorted(devices.items())
                 if entry["quarantine_reason"] is None)
    timeline = _history_json(events_path, "--device", clean)["timeline"]
    kinds = [event["kind"] for event in timeline]
    assert kinds.count("enroll") == 1
    assert kinds.count("offer") == CAMPAIGNS  # one offer per campaign

    # ---- artifact + floor ------------------------------------------------

    doc = {
        "schema": "eilid.bench.fleet-trajectory",
        "version": 1,
        "devices": FLEET_SIZE,
        "campaigns": CAMPAIGNS,
        "tamper_fraction": TAMPER_FRACTION,
        "elapsed_s": round(elapsed, 3),
        "devices_per_sec": round(devices_per_sec, 1),
        "quarantined": quarantined_total,
        "campaign_rollup": campaigns,
        "trends": trends,
    }
    artifact = os.path.join(os.getcwd(), "BENCH_fleet_trajectory.json")
    doc["history"] = _seeded_history(artifact, {
        "ts": round(time.time(), 3),
        "devices": FLEET_SIZE,
        "campaigns": CAMPAIGNS,
        "elapsed_s": round(elapsed, 3),
        "devices_per_sec": round(devices_per_sec, 1),
        "quarantined": quarantined_total,
    })
    assert doc["history"]  # the trajectory is never empty
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)

    # The Prometheus exposition of the span-derived metrics the three
    # campaigns recorded (CI uploads it next to the JSON artifact) --
    # and the smoke check that the exporter's line format stays
    # parseable (every sample line, one value, numeric).
    prom_artifact = os.path.join(os.getcwd(), "BENCH_fleet_trajectory.prom")
    snapshot = METRICS.snapshot()
    write_snapshot(prom_artifact, snapshot, fmt="prom",
                   source="bench_trajectory")
    with open(prom_artifact, encoding="utf-8") as handle:
        families = parse_prometheus(handle.read())
    assert "eilid_campaign_offer_ms_count" in families
    offer_count = families["eilid_campaign_offer_ms_count"][0][1]
    assert offer_count == offers, (
        f"prom export shows {offer_count} offer spans, campaigns "
        f"reported {offers} offers")

    benchmark.extra_info["devices_per_sec"] = round(devices_per_sec)
    benchmark.extra_info["quarantined"] = quarantined_total
    assert devices_per_sec >= TRAJECTORY_FLOOR_DPS
