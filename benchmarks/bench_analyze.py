"""Static-analyzer throughput gate.

One analysis = recover the CFG from a linked Table IV build and run
every rule group (stack bounds, region writes, coverage lint) into a
finalized :class:`repro.analyze.AnalysisReport`.  The gate sweeps the
whole Table IV corpus in both variants, so a regression in any layer
under the analyzer -- decode, CFG recovery, the rule walks -- moves
the analyses/s number.

Floors are absolute and deliberately loose (runner-variance immune):
only an accidental quadratic walk or a decode-path regression gets
near them.  Determinism rides the bench: the same build analyzed
twice must serialise byte-identically.

Emits ``BENCH_analyze.json`` with a seeded ``history`` list folding in
previous runs (uploaded next to the fleet-trajectory artifacts).

Reference numbers (1-core dev container): ~200 analyses/s across
the 14-image corpus; the floor is set at 4.
"""

import json
import os
import time

from repro.analyze import analyze_program
from repro.api.firmware import build_firmware
from repro.api.spec import FirmwareSpec
from repro.apps.registry import TABLE_IV_ORDER

VARIANTS = ("original", "eilid")
ANALYSES_PER_SEC_FLOOR = 4
ARTIFACT = "BENCH_analyze.json"
HISTORY_LIMIT = 20


def _corpus():
    """Every Table IV app x variant, built once."""
    builds = []
    for app in TABLE_IV_ORDER:
        for variant in VARIANTS:
            spec = FirmwareSpec(kind="app", app=app, variant=variant)
            builds.append((app, variant, build_firmware(spec)))
    return builds


def _seeded_history(entry):
    """Fold previous runs' entries into a bounded history list."""
    history = []
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, encoding="utf-8") as handle:
                history = json.load(handle).get("history", [])
        except (OSError, ValueError):
            history = []
    history.append(entry)
    return history[-HISTORY_LIMIT:]


def test_bench_analyze_corpus(benchmark):
    corpus = _corpus()

    def measure():
        reports = []
        start = time.perf_counter()
        for app, variant, build in corpus:
            reports.append(analyze_program(build.program, name=app,
                                           variant=variant))
        return reports, time.perf_counter() - start

    reports, elapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_sec = len(reports) / elapsed if elapsed else 0.0

    # The science rides the bench: the whole benign corpus is clean,
    # and a re-analysis of the same builds is byte-identical.
    assert all(report.ok for report in reports), \
        [r.name for r in reports if not r.ok]
    again = [analyze_program(build.program, name=app, variant=variant)
             for app, variant, build in corpus]
    assert [json.dumps(r.to_dict(), sort_keys=True) for r in reports] == \
           [json.dumps(r.to_dict(), sort_keys=True) for r in again]

    total_findings = sum(len(r.findings) for r in reports)
    benchmark.extra_info["images"] = len(corpus)
    benchmark.extra_info["analyses_per_sec"] = round(per_sec, 1)
    benchmark.extra_info["findings"] = total_findings

    entry = {
        "ts": round(time.time(), 3),
        "images": len(corpus),
        "analyses_per_sec": round(per_sec, 1),
        "findings": total_findings,
    }
    doc = {
        "schema": "eilid.bench.analyze",
        "version": 1,
        "corpus": [f"{app}/{variant}" for app, variant, _ in corpus],
        "reports": {f"{r.name}/{r.variant}": r.to_dict()["counts"]
                    for r in reports},
        "history": _seeded_history(entry),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)

    assert per_sec >= ANALYSES_PER_SEC_FLOOR, (
        f"analyzer throughput {per_sec:.1f} analyses/s is below the "
        f"{ANALYSES_PER_SEC_FLOOR} analyses/s floor")
